package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// AblationFullCost checks the paper's design decision to compare only
// the strategy-unique cost terms: it reports whether adding the
// (strategy-common) training term ever changes APT's selection.
func (e *Env) AblationFullCost() (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablation: full-cost model", "does including T_train change the selection?"))
	agree, total := 0, 0
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, h := range []int{8, 32, 128} {
			res, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: h}))
			if err != nil {
				return "", err
			}
			cm := &core.CostModel{
				Profile:      res.APT.Profile(),
				Devices:      e.opts.Devices,
				IncludeTrain: true,
			}
			full := cm.Select(res.APT.DryRunStats().PerStrategy)
			total++
			same := full[0].Kind == res.Choice
			if same {
				agree++
			}
			fmt.Fprintf(&b, "  %s hidden %-4d unique-cost pick %-4v full-cost pick %-4v agree=%v\n",
				abbr, h, res.Choice, full[0].Kind, same)
		}
	}
	fmt.Fprintf(&b, "agreement: %d/%d (the unique-parts comparison loses nothing when they agree)\n", agree, total)
	return b.String(), nil
}

// hotSetOverlap measures the paper's dry-run stability claim: the
// top-1% most-accessed nodes of two independently sampled epochs
// overlap almost completely (the paper reports 94.77% on PS).
func (e *Env) hotSetOverlap(abbr string) float64 {
	d := e.Dataset(abbr)
	epochFreq := func(seed uint64) []int64 {
		freq := make([]int64, d.Graph.NumNodes())
		s := sample.NewSampler(d.Graph, sample.Config{Fanouts: []int{10, 10, 10}}, graph.NewRNG(seed))
		for lo := 0; lo < len(d.TrainSeeds); lo += e.opts.BatchSize {
			hi := lo + e.opts.BatchSize
			if hi > len(d.TrainSeeds) {
				hi = len(d.TrainSeeds)
			}
			sample.CountLayer1SrcAccesses(freq, s.Sample(d.TrainSeeds[lo:hi]))
		}
		return freq
	}
	top1 := func(freq []int64) map[graph.NodeID]struct{} {
		n := len(freq)
		ids := make([]graph.NodeID, n)
		for i := range ids {
			ids[i] = graph.NodeID(i)
		}
		sort.Slice(ids, func(i, j int) bool { return freq[ids[i]] > freq[ids[j]] })
		k := n / 100
		set := make(map[graph.NodeID]struct{}, k)
		for _, v := range ids[:k] {
			set[v] = struct{}{}
		}
		return set
	}
	a := top1(epochFreq(11))
	bSet := top1(epochFreq(22))
	inter := 0
	for v := range a {
		if _, ok := bSet[v]; ok {
			inter++
		}
	}
	if len(a) == 0 {
		return 0
	}
	return float64(inter) / float64(len(a))
}

// AblationDryRunEpochs quantifies the paper's claim that one dry-run
// epoch suffices: the top-1% hot sets of two epochs overlap almost
// completely, and the single-epoch estimates track multi-epoch
// measurements.
func (e *Env) AblationDryRunEpochs() (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablation: dry-run length", "1 dry-run epoch vs multi-epoch measurement"))
	for _, abbr := range []string{"PS", "FS"} {
		fmt.Fprintf(&b, "  %s: top-1%% hot-set overlap between two epochs: %.1f%% (paper: 94.77%% on PS)\n",
			abbr, e.hotSetOverlap(abbr)*100)
	}
	for _, abbr := range []string{"PS", "FS"} {
		res, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32}))
		if err != nil {
			return "", err
		}
		var worst float64
		for _, est := range res.APT.Estimates {
			act := res.Stats[est.Kind]
			actual := act.SampleSec + act.BuildSec + act.LoadSec + act.ShuffleSec
			rel := abs((est.ComparableCost() - actual) / actual * 100)
			if rel > worst {
				worst = rel
			}
		}
		fmt.Fprintf(&b, "  %s: max |estimate error| from one dry-run epoch over %d measured epochs: %.1f%%\n",
			abbr, e.opts.Epochs, worst)
	}
	b.WriteString("(the paper observes ~95% hot-set overlap between epochs; one epoch suffices)\n")
	return b.String(), nil
}

// AblationCachePolicy swaps the paper's hotness-based cache rules for
// the degree-based PaGraph-style baseline and reports the change in
// feature-loading time for each strategy.
func (e *Env) AblationCachePolicy() (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablation: cache policy", "dry-run hotness policy vs degree-based policy"))
	deg := cache.PolicyDegree
	for _, abbr := range []string{"PS", "FS"} {
		hot, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32}))
		if err != nil {
			return "", err
		}
		task := e.task(taskConfig{abbr: abbr, hidden: 32})
		task.CachePolicyOverride = &deg
		degRes, err := e.RunCase(task)
		if err != nil {
			return "", err
		}
		rows := [][]string{}
		for _, k := range strategy.Core {
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.4fs", hot.Stats[k].LoadSec),
				fmt.Sprintf("%.4fs", degRes.Stats[k].LoadSec),
				fmt.Sprintf("%.2fx", degRes.Stats[k].LoadSec/maxSec(hot.Stats[k].LoadSec))})
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s feature-loading time", abbr),
			[]string{"strategy", "hotness", "degree", "ratio"}, rows))
	}
	return b.String(), nil
}

func maxSec(s float64) float64 {
	if s <= 0 {
		return 1e-12
	}
	return s
}

// AblationPipelining compares three views of stage overlap
// (GNNLab/DSP-style pipelining of sampling against loading and
// training) per strategy: the synchronous epoch, the analytic ideal
// (slowest stage gates the epoch), and the time actually measured by
// running the pipelined engine (prefetch goroutine + bounded queue,
// engine.Config.Pipeline) — then asks whether overlap would change
// APT's selection.
func (e *Env) AblationPipelining() (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablation: pipelined execution", "synchronous stages vs ideal overlap vs measured pipelined engine"))
	changed := 0
	for _, abbr := range []string{"PS", "FS", "IM"} {
		res, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32}))
		if err != nil {
			return "", err
		}
		measured := map[strategy.Kind]float64{}
		for _, k := range strategy.Core {
			eng, err := res.APT.BuildEngine(k)
			if err != nil {
				return "", err
			}
			eng.EnablePipeline(2)
			measured[k] = eng.RunEpoch().MeasuredPipelinedSec
		}
		rows := [][]string{}
		bestSeq, bestPipe := strategy.GDP, strategy.GDP
		for _, k := range strategy.Core {
			st := res.Stats[k]
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.4fs", st.EpochTime()),
				fmt.Sprintf("%.4fs", st.PipelinedTime()),
				fmt.Sprintf("%.4fs", measured[k]),
				fmt.Sprintf("%.2fx", st.EpochTime()/measured[k])})
			if st.EpochTime() < res.Stats[bestSeq].EpochTime() {
				bestSeq = k
			}
			if measured[k] < measured[bestPipe] {
				bestPipe = k
			}
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s (hidden 32)", abbr),
			[]string{"strategy", "synchronous", "ideal", "measured", "speedup"}, rows))
		fmt.Fprintf(&b, "  optimal: synchronous %v, pipelined %v\n", bestSeq, bestPipe)
		if bestSeq != bestPipe {
			changed++
		}
	}
	fmt.Fprintf(&b, "pipelining changes the optimal strategy in %d/3 cases\n", changed)
	return b.String(), nil
}

// ExtensionHybrid evaluates the paper's §5.2 conjecture (implemented
// here): GDP across machines + SNP within each machine, against the
// four core strategies on the distributed platform.
func (e *Env) ExtensionHybrid() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: hybrid strategy", "GDP across machines + SNP within machines (paper §5.2 future work)"))
	p := hardware.FourMachines4GPU()
	for _, abbr := range []string{"PS", "FS"} {
		task := e.task(taskConfig{abbr: abbr, hidden: 32, platform: p})
		apt, err := core.New(task)
		if err != nil {
			return "", err
		}
		if _, err := apt.Plan(); err != nil {
			return "", err
		}
		rows := []trace.Row{}
		kinds := append(append([]strategy.Kind{}, strategy.Core...), strategy.Hybrid)
		var times = map[strategy.Kind]engine.EpochStats{}
		for _, k := range kinds {
			eng, err := apt.BuildEngine(k)
			if err != nil {
				return "", err
			}
			st := eng.RunEpoch()
			times[k] = st
			rows = append(rows, trace.Row{
				Label: k.String(),
				Segments: []trace.Seg{
					{Name: "sampling", Sec: st.SamplingBar()},
					{Name: "loading", Sec: st.LoadSec},
					{Name: "training", Sec: st.TrainBar()},
				},
			})
		}
		b.WriteString(trace.RenderBars(fmt.Sprintf("%s distributed, hidden 32", abbr), rows))
		fmt.Fprintf(&b, "  hybrid vs SNP hidden-shuffle volume: %d vs %d bytes\n",
			times[strategy.Hybrid].Totals.HiddenShuffleBytes(),
			times[strategy.SNP].Totals.HiddenShuffleBytes())
	}
	return b.String(), nil
}

// ExtensionNVLink studies fast peer-GPU links (not in the paper's
// testbed): with NVLink, peer caches become readable and GDP's feature
// loading improves.
func (e *Env) ExtensionNVLink() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: NVLink platform", "peer-GPU cache reads shift the trade-offs"))
	for _, abbr := range []string{"FS"} {
		pcie, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32}))
		if err != nil {
			return "", err
		}
		nv := hardware.WithDevices(hardware.SingleMachine8GPUNVLink(), 1, e.opts.Devices)
		nvRes, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32, platform: nv}))
		if err != nil {
			return "", err
		}
		rows := [][]string{}
		for _, k := range strategy.Core {
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.4fs", pcie.Stats[k].EpochTime()),
				fmt.Sprintf("%.4fs", nvRes.Stats[k].EpochTime())})
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s epoch time", abbr),
			[]string{"strategy", "PCIe only", "with NVLink"}, rows))
		fmt.Fprintf(&b, "  APT pick: PCIe %v, NVLink %v\n", pcie.Choice, nvRes.Choice)
	}
	return b.String(), nil
}
