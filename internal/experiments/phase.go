package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/strategy"
)

// ExtensionPhaseDiagram demonstrates what the cost models buy beyond a
// single selection: because the strategy-unique costs depend on the
// hidden dimension only through the hidden-embedding volumes (linear
// in d'), ONE dry-run at a reference d' predicts the winner for every
// d' — a strategy phase diagram with crossover points, without ever
// executing the other configurations.
func (e *Env) ExtensionPhaseDiagram() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: strategy phase diagram", "cost-model-predicted winner across hidden dims from one dry-run"))
	const refHidden = 32
	sweep := []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		task := e.task(taskConfig{abbr: abbr, hidden: refHidden})
		apt, err := core.New(task)
		if err != nil {
			return "", err
		}
		if _, err := apt.Plan(); err != nil {
			return "", err
		}
		cm := &core.CostModel{Profile: apt.Profile(), Devices: task.Platform.NumDevices()}
		fmt.Fprintf(&b, "%s: ", abbr)
		var prev strategy.Kind = -1
		for _, h := range sweep {
			ratio := float64(h) / float64(refHidden)
			var best strategy.Kind
			bestCost := -1.0
			for _, k := range strategy.Core {
				st := scaleHidden(apt.DryRunStats().PerStrategy[k], ratio)
				c := cm.Estimate(k, st).ComparableCost()
				if bestCost < 0 || c < bestCost {
					best, bestCost = k, c
				}
			}
			if best != prev {
				if prev != -1 {
					fmt.Fprintf(&b, " | d'>=%d: %v", h, best)
				} else {
					fmt.Fprintf(&b, "%v", best)
				}
				prev = best
			}
		}
		fmt.Fprintln(&b)
	}
	b.WriteString("(crossovers predicted analytically; Figure 8a validates the executed subset)\n")
	return b.String(), nil
}

// scaleHidden clones an epoch's statistics with the hidden-embedding
// volumes scaled by ratio (they are linear in d'; every other
// strategy-unique volume is d'-independent).
func scaleHidden(st engine.EpochStats, ratio float64) engine.EpochStats {
	out := st
	out.PerDevice = make([]engine.WorkerStats, len(st.PerDevice))
	copy(out.PerDevice, st.PerDevice)
	for i := range out.PerDevice {
		out.PerDevice[i].HiddenA2ABytes = int64(float64(out.PerDevice[i].HiddenA2ABytes) * ratio)
		out.PerDevice[i].HiddenBcastBytes = int64(float64(out.PerDevice[i].HiddenBcastBytes) * ratio)
	}
	out.Totals.HiddenA2ABytes = int64(float64(out.Totals.HiddenA2ABytes) * ratio)
	out.Totals.HiddenBcastBytes = int64(float64(out.Totals.HiddenBcastBytes) * ratio)
	return out
}
