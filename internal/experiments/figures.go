package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/strategy"
)

// Figure1 reproduces the motivating experiment: GraphSAGE on 8 GPUs,
// varying the input feature dimension on PS and the hidden dimension
// on FS — showing there is no consistent winner.
func (e *Env) Figure1() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 1", "no consistent winner: epoch time of the 4 strategies"))
	for _, in := range []int{64, 128, 256, 512} {
		c, err := e.RunCase(e.task(taskConfig{abbr: "PS", featDim: in, hidden: 32}))
		if err != nil {
			return "", err
		}
		b.WriteString(barsForCase(fmt.Sprintf("(a) PS, input dim %d, hidden 32", in), c))
	}
	for _, h := range []int{8, 32, 128, 512} {
		c, err := e.RunCase(e.task(taskConfig{abbr: "FS", hidden: h}))
		if err != nil {
			return "", err
		}
		b.WriteString(barsForCase(fmt.Sprintf("(b) FS, hidden dim %d", h), c))
	}
	return b.String(), nil
}

// Figure8Hidden is Fig. 8a: the hidden-dimension sweep on all three
// graphs with 8 GPUs.
func (e *Env) Figure8Hidden() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 8a", "single machine, varying hidden dimension"))
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, h := range []int{8, 32, 128, 512} {
			c, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: h}))
			if err != nil {
				return "", err
			}
			b.WriteString(barsForCase(fmt.Sprintf("%s, hidden %d", abbr, h), c))
		}
	}
	return b.String(), nil
}

// Figure8Fanout is Fig. 8b: the fanout sweep (2- and 3-layer models).
func (e *Env) Figure8Fanout() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 8b", "single machine, varying fanout"))
	fanouts := [][]int{{10, 5}, {15, 10}, {10, 10, 10}, {20, 15, 10}}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, f := range fanouts {
			c, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32, fanouts: f}))
			if err != nil {
				return "", err
			}
			b.WriteString(barsForCase(fmt.Sprintf("%s, fanout %v", abbr, f), c))
		}
	}
	return b.String(), nil
}

// Figure8Cache is Fig. 8c: the GPU cache-size sweep (fractions of the
// feature bytes standing in for the paper's 0-8 GB absolute sizes).
func (e *Env) Figure8Cache() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 8c", "single machine, varying GPU cache size"))
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, frac := range []float64{-1, 0.02, 0.04, 0.08, 0.16} {
			label := "disabled"
			if frac > 0 {
				label = fmt.Sprintf("%.0f%% of features", frac*100)
			}
			c, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32, cacheFrac: frac}))
			if err != nil {
				return "", err
			}
			b.WriteString(barsForCase(fmt.Sprintf("%s, cache %s", abbr, label), c))
		}
	}
	return b.String(), nil
}

// Figure9 is the distributed experiment: 16 GPUs on 4 machines,
// varying hidden dimension; features partitioned across machine CPUs.
func (e *Env) Figure9() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 9", "4 machines x 4 GPUs, varying hidden dimension"))
	p := hardware.FourMachines4GPU()
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, h := range []int{8, 32, 128, 512} {
			c, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: h, platform: p}))
			if err != nil {
				return "", err
			}
			b.WriteString(barsForCase(fmt.Sprintf("%s, hidden %d (distributed)", abbr, h), c))
		}
	}
	return b.String(), nil
}

// Figure10 is the attention-model experiment: GAT with 4 heads,
// varying the per-head hidden dimension (total = 4x).
func (e *Env) Figure10() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 10", "GAT (4 heads), single machine, varying hidden dimension"))
	for _, abbr := range []string{"PS", "FS", "IM"} {
		for _, h := range []int{2, 8, 32, 64} {
			c, err := e.RunCase(e.task(taskConfig{abbr: abbr, model: "gat", hidden: h, heads: 4}))
			if err != nil {
				return "", err
			}
			b.WriteString(barsForCase(fmt.Sprintf("%s, GAT hidden %dx4", abbr, h), c))
		}
	}
	return b.String(), nil
}

// Figure11 contrasts METIS-quality multilevel partitioning against
// random partitioning: GDP/NFP are unaffected, SNP/DNP degrade. The
// paper's real graphs have strong community structure that METIS
// exploits (cuts of a few percent); RMAT synthetics are notoriously
// hard to partition, so the effect is muted on the PS/FS/IM presets —
// the "CM" community-dominated graph isolates the mechanism the figure
// is about (multilevel cut ~25% vs random ~87%).
func (e *Env) Figure11() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 11", "multilevel vs random graph partitions"))
	e.data["CM"] = dataset.Build(dataset.Spec{
		Name: "community-sim", Abbr: "CM",
		NumNodes: int(130_000 * e.opts.Scale), AvgDegree: 6, FeatDim: 128,
		Classes: 64, SkewA: 0.35, HomophilyDegree: 14,
		TrainFraction: 0.08, Seed: 2002,
	}, false)
	for _, abbr := range []string{"PS", "FS", "IM", "CM"} {
		ml, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32}))
		if err != nil {
			return "", err
		}
		rd, err := e.RunCase(e.task(taskConfig{abbr: abbr, hidden: 32, partKind: core.PartitionRandom}))
		if err != nil {
			return "", err
		}
		b.WriteString(barsForCase(fmt.Sprintf("%s, multilevel partitioning", abbr), ml))
		b.WriteString(barsForCase(fmt.Sprintf("%s, random partitioning", abbr), rd))
		for _, k := range []strategy.Kind{strategy.SNP, strategy.DNP} {
			ratio := rd.Stats[k].EpochTime() / ml.Stats[k].EpochTime()
			fmt.Fprintf(&b, "  %s %v slowdown under random partitioning: %.2fx\n", abbr, k, ratio)
		}
		fmt.Fprintf(&b, "  %s per-tier reads (multilevel, %v): %s\n",
			abbr, ml.Choice, tierReadShares(ml.Stats[ml.Choice]))
	}
	return b.String(), nil
}

// Figure12 compares the cost models' estimated epoch time against the
// measured epoch time (the paper adds GDP's training-compute time to
// the strategy-unique estimate, as isolating shuffle from training is
// tricky; we do the same).
func (e *Env) Figure12() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 12", "cost-model estimated vs actual epoch time (FS)"))
	var maxErr float64
	for _, h := range []int{8, 32, 128} {
		c, err := e.RunCase(e.task(taskConfig{abbr: "FS", hidden: h}))
		if err != nil {
			return "", err
		}
		gdpTrain := c.Stats[strategy.GDP].TrainSec
		fmt.Fprintf(&b, "FS hidden %d:\n", h)
		for _, est := range c.APT.Estimates {
			actual := c.Stats[est.Kind].EpochTime()
			predicted := est.ComparableCost() + gdpTrain
			rel := (predicted - actual) / actual * 100
			if r := abs(rel); r > maxErr {
				maxErr = r
			}
			fmt.Fprintf(&b, "  %-4v estimated %.4fs  actual %.4fs  error %+.1f%%\n",
				est.Kind, predicted, actual, rel)
		}
	}
	fmt.Fprintf(&b, "max |error| = %.1f%% (paper reports max 5.5%% on their testbed)\n", maxErr)
	return b.String(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Figure7 is the efficiency sanity check: our engine's GDP against the
// DGL stand-in (GDP with the GPU cache disabled, as the paper disables
// caching to match DGL) and the DistDGL stand-in (GDP with CPU-based
// sampling, ~5x slower draws).
func (e *Env) Figure7() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 7", "engine GDP vs DGL/DistDGL stand-ins (epoch time)"))

	// Single machine: cache on (APT) vs off (DGL).
	apt, err := e.RunCase(e.task(taskConfig{abbr: "PS", hidden: 32}))
	if err != nil {
		return "", err
	}
	noCache, err := e.RunCase(e.task(taskConfig{abbr: "PS", hidden: 32, cacheFrac: -1}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "single machine PS: APT-GDP (no cache, DGL-style) %.4fs vs APT-GDP %.4fs\n",
		noCache.Stats[strategy.GDP].EpochTime(), apt.Stats[strategy.GDP].EpochTime())

	// Distributed: GPU sampling vs CPU sampling (DistDGL).
	p := hardware.FourMachines4GPU()
	gpuS, err := e.RunCase(e.task(taskConfig{abbr: "PS", hidden: 32, platform: p}))
	if err != nil {
		return "", err
	}
	slow := *p
	slow.SampleEdgesPerSec /= 5
	cpuS, err := e.RunCase(e.task(taskConfig{abbr: "PS", hidden: 32, platform: &slow}))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "distributed PS: GDP with GPU sampling %.4fs vs CPU sampling (DistDGL-style) %.4fs\n",
		gpuS.Stats[strategy.GDP].EpochTime(), cpuS.Stats[strategy.GDP].EpochTime())
	fmt.Fprintf(&b, "dry-run (plan) wall time: %.2fs\n", apt.APT.PlanWallSeconds)
	return b.String(), nil
}

var _ = engine.EpochStats{} // keep import while reports evolve
