package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// ExtensionCPUCache evaluates the paper's footnote-3 mechanism: each
// machine replicates hot remotely-hosted features into excess CPU
// memory, cutting cross-machine reads on the distributed platform.
func (e *Env) ExtensionCPUCache() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: CPU hotness cache", "per-machine replication of hot remote features (paper footnote 3)"))
	p := hardware.FourMachines4GPU()
	for _, abbr := range []string{"PS", "FS"} {
		d := e.Dataset(abbr)
		base := e.task(taskConfig{abbr: abbr, hidden: 32, platform: p})
		withCPU := e.task(taskConfig{abbr: abbr, hidden: 32, platform: p})
		withCPU.CPUCacheBytes = d.CacheBytesFraction(0.25)
		off, err := e.RunCase(base)
		if err != nil {
			return "", err
		}
		on, err := e.RunCase(withCPU)
		if err != nil {
			return "", err
		}
		rows := [][]string{}
		for _, k := range strategy.Core {
			offSt, onSt := off.Stats[k], on.Stats[k]
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.1fMB", float64(offSt.Totals.Load.Bytes[cache.LocRemoteCPU])/1e6),
				fmt.Sprintf("%.1fMB", float64(onSt.Totals.Load.Bytes[cache.LocRemoteCPU])/1e6),
				fmt.Sprintf("%.4fs", offSt.EpochTime()),
				fmt.Sprintf("%.4fs", onSt.EpochTime()),
			})
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s distributed", abbr),
			[]string{"strategy", "remote reads (off)", "remote reads (on)", "epoch (off)", "epoch (on)"}, rows))
	}
	return b.String(), nil
}

// ExtensionLayerWise runs the strategy comparison under layer-wise
// (FastGCN-style) sampling — APT treats sampling as a black box, so
// the whole pipeline, including planning, works unchanged.
func (e *Env) ExtensionLayerWise() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: layer-wise sampling", "strategies + APT under a FastGCN-style sampler"))
	for _, abbr := range []string{"PS", "FS"} {
		task := e.task(taskConfig{abbr: abbr, hidden: 32})
		task.Sampling.Method = sample.LayerWise
		apt, err := core.New(task)
		if err != nil {
			return "", err
		}
		choice, err := apt.Plan()
		if err != nil {
			return "", err
		}
		rows := []trace.Row{}
		for _, k := range strategy.Core {
			eng, err := apt.BuildEngine(k)
			if err != nil {
				return "", err
			}
			st := eng.RunEpoch()
			rows = append(rows, trace.Row{
				Label:  k.String(),
				Marked: k == choice,
				Segments: []trace.Seg{
					{Name: "sampling", Sec: st.SamplingBar()},
					{Name: "loading", Sec: st.LoadSec},
					{Name: "training", Sec: st.TrainBar()},
				},
			})
		}
		b.WriteString(trace.RenderBars(fmt.Sprintf("%s, layer-wise sampling, hidden 32", abbr), rows))
	}
	return b.String(), nil
}
