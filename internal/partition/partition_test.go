package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// communityGraph builds a graph of k dense clusters with sparse
// inter-cluster edges — the easy case any decent edge-cut partitioner
// must nail.
func communityGraph(k, per int, seed uint64) *graph.Graph {
	n := k * per
	rng := graph.NewRNG(seed)
	b := graph.NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * per
		for i := 0; i < per*6; i++ {
			u := base + rng.Intn(per)
			v := base + rng.Intn(per)
			if u != v {
				b.AddUndirected(int32(u), int32(v))
			}
		}
	}
	// Sparse cross edges.
	for i := 0; i < n/20; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddUndirected(int32(u), int32(v))
		}
	}
	return b.Build(true)
}

func TestRandomBalanced(t *testing.T) {
	g := communityGraph(4, 100, 1)
	p := Random(g, 4, 7)
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Sizes() {
		if s != 100 {
			t.Errorf("random part size = %d, want exactly 100", s)
		}
	}
}

func TestRangePartition(t *testing.T) {
	g := communityGraph(2, 50, 1)
	p := Range(g, 3)
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	if p.Assign[0] != 0 || p.Assign[99] != 2 {
		t.Errorf("range assignment endpoints: %d, %d", p.Assign[0], p.Assign[99])
	}
}

func TestMultilevelBeatsRandomOnCommunities(t *testing.T) {
	g := communityGraph(8, 150, 3)
	ml := Multilevel(g, 8, MultilevelConfig{Seed: 11})
	if err := ml.Validate(true); err != nil {
		t.Fatal(err)
	}
	rd := Random(g, 8, 11)
	qm := Evaluate(g, ml)
	qr := Evaluate(g, rd)
	if qm.EdgeCut*3 >= qr.EdgeCut {
		t.Errorf("multilevel cut %d not clearly better than random cut %d", qm.EdgeCut, qr.EdgeCut)
	}
	if qm.Imbalance > 1.35 {
		t.Errorf("multilevel imbalance %.3f too high", qm.Imbalance)
	}
}

func TestMultilevelPowerLaw(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 3000, AvgDegree: 8, Seed: 5})
	p := Multilevel(g, 8, MultilevelConfig{Seed: 5})
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, p)
	qr := Evaluate(g, Random(g, 8, 5))
	if q.EdgeCut >= qr.EdgeCut {
		t.Errorf("multilevel cut %d >= random cut %d on power-law graph", q.EdgeCut, qr.EdgeCut)
	}
}

func TestMultilevelSinglePart(t *testing.T) {
	g := communityGraph(2, 30, 1)
	p := Multilevel(g, 1, MultilevelConfig{})
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	if Evaluate(g, p).EdgeCut != 0 {
		t.Error("k=1 partition has nonzero cut")
	}
}

func TestMultilevelDeterministic(t *testing.T) {
	g := communityGraph(4, 80, 2)
	a := Multilevel(g, 4, MultilevelConfig{Seed: 9})
	b := Multilevel(g, 4, MultilevelConfig{Seed: 9})
	for v := range a.Assign {
		if a.Assign[v] != b.Assign[v] {
			t.Fatal("same-seed multilevel runs diverged")
		}
	}
}

func TestMultilevelCoversAllNodesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.ErdosRenyi(graph.GenerateConfig{NumNodes: 200, AvgDegree: 6, Seed: seed})
		p := Multilevel(g, 4, MultilevelConfig{Seed: seed})
		return p.Validate(false) == nil && len(p.Assign) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateCutCountsBothDirections(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddUndirected(0, 1)
	g := b.Build(true)
	p := &Partitioning{Assign: []int32{0, 1}, NumParts: 2}
	q := Evaluate(g, p)
	if q.EdgeCut != 2 {
		t.Errorf("EdgeCut = %d, want 2 (one undirected edge = two directed)", q.EdgeCut)
	}
	if q.CutRatio != 1.0 {
		t.Errorf("CutRatio = %v, want 1", q.CutRatio)
	}
}

func TestValidateRejectsBadAssign(t *testing.T) {
	p := &Partitioning{Assign: []int32{0, 5}, NumParts: 2}
	if err := p.Validate(false); err == nil {
		t.Error("Validate accepted out-of-range part")
	}
	p2 := &Partitioning{Assign: []int32{0, 0}, NumParts: 2}
	if err := p2.Validate(true); err == nil {
		t.Error("strict Validate accepted empty part")
	}
}

func TestMultilevelImbalanceBound(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 2000, AvgDegree: 10, Seed: 8})
	p := Multilevel(g, 4, MultilevelConfig{Seed: 8, BalanceSlack: 0.05})
	q := Evaluate(g, p)
	// Slack is on vertex weight during refinement; allow generous bound
	// because initial growing may overrun slightly.
	if q.Imbalance > 1.4 {
		t.Errorf("imbalance %.3f exceeds bound", q.Imbalance)
	}
}
