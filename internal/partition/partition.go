// Package partition implements edge-cut graph partitioning for the SNP
// and DNP parallelization strategies. The main algorithm is a
// from-scratch multilevel partitioner in the style of METIS
// (coarsening by heavy-edge matching, greedy initial partitioning,
// boundary Kernighan–Lin refinement); Random and Range partitioners
// serve as the paper's Figure 11 baseline.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Partitioning assigns every node of a graph to one of K parts.
type Partitioning struct {
	// Assign[v] is the part of node v, in [0, NumParts).
	Assign []int32
	// NumParts is K.
	NumParts int
}

// Part returns the part of node v.
func (p *Partitioning) Part(v graph.NodeID) int32 { return p.Assign[v] }

// Sizes returns the node count of each part.
func (p *Partitioning) Sizes() []int {
	sizes := make([]int, p.NumParts)
	for _, a := range p.Assign {
		sizes[a]++
	}
	return sizes
}

// Validate checks that every assignment is in range and (when strict)
// that no part is empty.
func (p *Partitioning) Validate(strict bool) error {
	if p.NumParts <= 0 {
		return fmt.Errorf("partition: NumParts = %d", p.NumParts)
	}
	for v, a := range p.Assign {
		if a < 0 || int(a) >= p.NumParts {
			return fmt.Errorf("partition: node %d assigned to part %d of %d", v, a, p.NumParts)
		}
	}
	if strict {
		for i, s := range p.Sizes() {
			if s == 0 {
				return fmt.Errorf("partition: part %d is empty", i)
			}
		}
	}
	return nil
}

// Quality summarizes a partitioning against a graph.
type Quality struct {
	// EdgeCut is the number of edges whose endpoints live in different
	// parts.
	EdgeCut int64
	// CutRatio is EdgeCut / total edges.
	CutRatio float64
	// Imbalance is max part size / ideal part size; 1.0 is perfect.
	Imbalance float64
}

// Evaluate measures the edge cut and balance of p on g.
func Evaluate(g *graph.Graph, p *Partitioning) Quality {
	var cut int64
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		pv := p.Assign[v]
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if p.Assign[u] != pv {
				cut++
			}
		}
	}
	q := Quality{EdgeCut: cut}
	if e := g.NumEdges(); e > 0 {
		q.CutRatio = float64(cut) / float64(e)
	}
	ideal := float64(n) / float64(p.NumParts)
	maxSize := 0
	for _, s := range p.Sizes() {
		if s > maxSize {
			maxSize = s
		}
	}
	if ideal > 0 {
		q.Imbalance = float64(maxSize) / ideal
	}
	return q
}

// Random assigns nodes to parts uniformly at random (paper Fig. 11's
// "random partitioning" baseline). The result is balanced in
// expectation but has a near-worst-case edge cut.
func Random(g *graph.Graph, k int, seed uint64) *Partitioning {
	rng := graph.NewRNG(seed)
	n := g.NumNodes()
	assign := make([]int32, n)
	// Assign by shuffling to guarantee exact balance.
	perm := rng.Perm(n)
	for i, v := range perm {
		assign[v] = int32(i % k)
	}
	return &Partitioning{Assign: assign, NumParts: k}
}

// Range assigns contiguous node-ID blocks to parts. Cheap and
// deterministic; cut quality depends entirely on ID locality.
func Range(g *graph.Graph, k int) *Partitioning {
	n := g.NumNodes()
	assign := make([]int32, n)
	per := (n + k - 1) / k
	for v := 0; v < n; v++ {
		a := v / per
		if a >= k {
			a = k - 1
		}
		assign[v] = int32(a)
	}
	return &Partitioning{Assign: assign, NumParts: k}
}
