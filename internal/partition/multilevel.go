package partition

import (
	"sort"

	"repro/internal/graph"
)

// MultilevelConfig tunes the multilevel partitioner.
type MultilevelConfig struct {
	// CoarsenTarget stops coarsening once the coarse graph has at most
	// this many nodes per part. Default 30.
	CoarsenTarget int
	// RefinePasses is the number of boundary-refinement sweeps applied
	// at every level. Default 4.
	RefinePasses int
	// BalanceSlack is the allowed node-count overrun versus the ideal,
	// e.g. 0.10 permits parts up to 1.10x ideal size. Default 0.10.
	BalanceSlack float64
	// EdgeBalanced adds a second balance constraint on edge mass
	// (vertex weight 1+degree), METIS-style multi-constraint
	// partitioning: parts stay balanced in node count AND in the edge
	// workload their nodes attract. On skewed graphs, node-only balance
	// concentrates hub workload on one part, which turns SNP/DNP
	// owners into stragglers.
	EdgeBalanced bool
	// EdgeSlack is the allowed edge-mass overrun when EdgeBalanced.
	// Default 0.30.
	EdgeSlack float64
	// Seed drives matching and tie-breaking.
	Seed uint64
}

func (c *MultilevelConfig) defaults() {
	if c.CoarsenTarget <= 0 {
		c.CoarsenTarget = 30
	}
	if c.RefinePasses <= 0 {
		c.RefinePasses = 4
	}
	if c.BalanceSlack <= 0 {
		c.BalanceSlack = 0.10
	}
	if c.EdgeSlack <= 0 {
		c.EdgeSlack = 0.30
	}
}

// Multilevel computes a K-way edge-cut partitioning of g using the
// multilevel scheme: heavy-edge-matching coarsening, greedy
// graph-growing initial partitioning on the coarsest graph, and
// boundary Kernighan–Lin/FM refinement during uncoarsening. This plays
// the role of METIS in the paper.
func Multilevel(g *graph.Graph, k int, cfg MultilevelConfig) *Partitioning {
	cfg.defaults()
	if k <= 1 {
		return &Partitioning{Assign: make([]int32, g.NumNodes()), NumParts: max(k, 1)}
	}
	rng := graph.NewRNG(cfg.Seed)
	w := symmetrize(g)
	if cfg.EdgeBalanced {
		for v := 0; v < w.n(); v++ {
			w.vw[v] = 1 + (w.xadj[v+1] - w.xadj[v])
		}
	}

	// Coarsening phase: stack of graphs and fine->coarse maps.
	graphs := []*wgraph{w}
	var maps [][]int32
	for graphs[len(graphs)-1].n() > k*cfg.CoarsenTarget {
		cur := graphs[len(graphs)-1]
		cmap, coarse := coarsen(cur, rng)
		if coarse.n() >= cur.n()*9/10 {
			break // matching stalled; further coarsening is pointless
		}
		graphs = append(graphs, coarse)
		maps = append(maps, cmap)
	}

	// Initial partition on the coarsest graph.
	coarsest := graphs[len(graphs)-1]
	assign := growInitial(coarsest, k, cfg, rng)
	refine(coarsest, assign, k, cfg, rng)

	// Uncoarsening with refinement at each level.
	for lvl := len(maps) - 1; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		cmap := maps[lvl]
		fineAssign := make([]int32, fine.n())
		for v := range fineAssign {
			fineAssign[v] = assign[cmap[v]]
		}
		assign = fineAssign
		refine(fine, assign, k, cfg, rng)
	}
	return &Partitioning{Assign: assign, NumParts: k}
}

// wgraph is a weighted undirected graph used internally during
// coarsening: parallel edges merged, weights accumulated. Vertices
// carry two weights: vw (the balance weight, edge mass under
// multi-constraint partitioning) and nw (collapsed original node
// count, always balanced).
type wgraph struct {
	xadj []int64
	adj  []int32
	adjw []int64 // edge weights
	vw   []int64 // balance weight (1, or 1+degree when edge-balanced)
	nw   []int64 // original node count
}

func (w *wgraph) n() int { return len(w.xadj) - 1 }

func sum64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// caps computes the per-part weight ceilings for both constraints.
func caps(w *wgraph, k int, cfg MultilevelConfig) (vwCap, nwCap int64) {
	vwCap = int64(float64(sum64(w.vw)) / float64(k) * (1 + cfg.EdgeSlack))
	nwCap = int64(float64(sum64(w.nw)) / float64(k) * (1 + cfg.BalanceSlack))
	return
}

// symmetrize converts the CSR graph into a weighted undirected wgraph,
// merging the u->v and v->u directions.
func symmetrize(g *graph.Graph) *wgraph {
	n := g.NumNodes()
	type edge struct{ u, v int32 }
	seen := make(map[edge]struct{}, len(g.Indices))
	deg := make([]int64, n+1)
	var edges []edge
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			a, b := u, int32(v)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			e := edge{a, b}
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			edges = append(edges, e)
			deg[a+1]++
			deg[b+1]++
		}
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	w := &wgraph{
		xadj: deg,
		adj:  make([]int32, deg[n]),
		adjw: make([]int64, deg[n]),
		vw:   make([]int64, n),
		nw:   make([]int64, n),
	}
	for v := range w.vw {
		w.vw[v] = 1
		w.nw[v] = 1
	}
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for _, e := range edges {
		w.adj[cursor[e.u]] = e.v
		w.adjw[cursor[e.u]] = 1
		cursor[e.u]++
		w.adj[cursor[e.v]] = e.u
		w.adjw[cursor[e.v]] = 1
		cursor[e.v]++
	}
	return w
}

// coarsen matches vertices by heavy-edge matching and collapses matched
// pairs, returning the fine->coarse map and the coarse graph.
func coarsen(w *wgraph, rng *graph.RNG) ([]int32, *wgraph) {
	n := w.n()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int64 = -1
		for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
			u := w.adj[i]
			if match[u] != -1 {
				continue
			}
			if w.adjw[i] > bestW {
				bestW = w.adjw[i]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	// Number coarse vertices.
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	var cn int32
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = cn
		m := match[v]
		if m >= 0 && int(m) != v {
			cmap[m] = cn
		}
		cn++
	}
	// Accumulate both vertex weights.
	cvw := make([]int64, cn)
	cnw := make([]int64, cn)
	for v := 0; v < n; v++ {
		cvw[cmap[v]] += w.vw[v]
		cnw[cmap[v]] += w.nw[v]
	}
	// Gather coarse edges per coarse node using a stamped scratch.
	type centry struct {
		to int32
		w  int64
	}
	rows := make([][]centry, cn)
	stamp := make([]int32, cn)
	for i := range stamp {
		stamp[i] = -1
	}
	slot := make([]int32, cn)
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
			cu := cmap[w.adj[i]]
			if cu == cv {
				continue
			}
			if stamp[cu] == cv {
				rows[cv][slot[cu]].w += w.adjw[i]
			} else {
				stamp[cu] = cv
				slot[cu] = int32(len(rows[cv]))
				rows[cv] = append(rows[cv], centry{to: cu, w: w.adjw[i]})
			}
		}
	}
	cw := &wgraph{xadj: make([]int64, cn+1), vw: cvw, nw: cnw}
	for v := int32(0); v < cn; v++ {
		cw.xadj[v+1] = cw.xadj[v] + int64(len(rows[v]))
	}
	cw.adj = make([]int32, cw.xadj[cn])
	cw.adjw = make([]int64, cw.xadj[cn])
	for v := int32(0); v < cn; v++ {
		row := rows[v]
		sort.Slice(row, func(i, j int) bool { return row[i].to < row[j].to })
		base := cw.xadj[v]
		for i, e := range row {
			cw.adj[base+int64(i)] = e.to
			cw.adjw[base+int64(i)] = e.w
		}
	}
	return cmap, cw
}

// growInitial produces an initial K-way assignment of the coarsest
// graph by greedy graph growing under both balance constraints.
func growInitial(w *wgraph, k int, cfg MultilevelConfig, rng *graph.RNG) []int32 {
	n := w.n()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	vwTarget := sum64(w.vw)/int64(k) + 1
	nwTarget := sum64(w.nw)/int64(k) + 1
	order := rng.Perm(n)
	cursor := 0
	nextSeed := func() int32 {
		for cursor < n {
			v := order[cursor]
			cursor++
			if assign[v] == -1 {
				return v
			}
		}
		return -1
	}
	for part := int32(0); part < int32(k); part++ {
		var vwSum, nwSum int64
		frontier := []int32{}
		grow := func(v int32) {
			assign[v] = part
			vwSum += w.vw[v]
			nwSum += w.nw[v]
			frontier = append(frontier, v)
		}
		if s := nextSeed(); s >= 0 {
			grow(s)
		}
		for vwSum < vwTarget && nwSum < nwTarget && len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
				u := w.adj[i]
				if assign[u] != -1 || vwSum >= vwTarget || nwSum >= nwTarget {
					continue
				}
				grow(u)
			}
			if len(frontier) == 0 && vwSum < vwTarget && nwSum < nwTarget {
				if s := nextSeed(); s >= 0 {
					grow(s)
				} else {
					break
				}
			}
		}
	}
	// Stragglers go to the part with the lightest node weight.
	nwSums := make([]int64, k)
	for v := 0; v < n; v++ {
		if assign[v] >= 0 {
			nwSums[assign[v]] += w.nw[v]
		}
	}
	for v := 0; v < n; v++ {
		if assign[v] == -1 {
			best := 0
			for p := 1; p < k; p++ {
				if nwSums[p] < nwSums[best] {
					best = p
				}
			}
			assign[v] = int32(best)
			nwSums[best] += w.nw[v]
		}
	}
	return assign
}

// refine performs boundary FM-style refinement: sweeps over boundary
// vertices moving each to the adjacent part with the highest cut gain,
// subject to both balance constraints.
func refine(w *wgraph, assign []int32, k int, cfg MultilevelConfig, rng *graph.RNG) {
	n := w.n()
	vwCap, nwCap := caps(w, k, cfg)
	vwSums := make([]int64, k)
	nwSums := make([]int64, k)
	for v := 0; v < n; v++ {
		vwSums[assign[v]] += w.vw[v]
		nwSums[assign[v]] += w.nw[v]
	}
	conn := make([]int64, k) // scratch: connectivity of v to each part
	touched := make([]int32, 0, 8)
	for pass := 0; pass < cfg.RefinePasses; pass++ {
		moved := 0
		order := rng.Perm(n)
		for _, v := range order {
			home := assign[v]
			touched = touched[:0]
			boundary := false
			for i := w.xadj[v]; i < w.xadj[v+1]; i++ {
				p := assign[w.adj[i]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += w.adjw[i]
				if p != home {
					boundary = true
				}
			}
			if boundary {
				bestPart := home
				bestGain := int64(0)
				for _, p := range touched {
					if p == home {
						continue
					}
					if vwSums[p]+w.vw[v] > vwCap || nwSums[p]+w.nw[v] > nwCap {
						continue
					}
					gain := conn[p] - conn[home]
					if gain > bestGain {
						bestGain = gain
						bestPart = p
					}
				}
				if bestPart != home {
					vwSums[home] -= w.vw[v]
					vwSums[bestPart] += w.vw[v]
					nwSums[home] -= w.nw[v]
					nwSums[bestPart] += w.nw[v]
					assign[v] = bestPart
					moved++
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}
	rebalance(w, assign, k, nwCap, vwSums, nwSums, rng)
}

// rebalance force-moves boundary vertices out of node-overweight parts
// (graph growing and refinement can leave parts over the node cap when
// the two constraints conflict; node balance wins because it drives
// seed assignment and sampling load).
func rebalance(w *wgraph, assign []int32, k int, nwCap int64, vwSums, nwSums []int64, rng *graph.RNG) {
	n := w.n()
	for iter := 0; iter < 3; iter++ {
		over := false
		for p := 0; p < k; p++ {
			if nwSums[p] > nwCap {
				over = true
			}
		}
		if !over {
			return
		}
		order := rng.Perm(n)
		for _, v := range order {
			home := assign[v]
			if nwSums[home] <= nwCap {
				continue
			}
			// Move v to the lightest-by-node part.
			best := 0
			for p := 1; p < k; p++ {
				if nwSums[p] < nwSums[best] {
					best = p
				}
			}
			if int32(best) == home {
				continue
			}
			assign[v] = int32(best)
			nwSums[home] -= w.nw[v]
			nwSums[best] += w.nw[v]
			vwSums[home] -= w.vw[v]
			vwSums[best] += w.vw[v]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
