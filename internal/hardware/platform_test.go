package hardware

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, p := range []*Platform{SingleMachine8GPU(), FourMachines4GPU(), SingleMachine8GPUNVLink()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestTopologyHelpers(t *testing.T) {
	p := FourMachines4GPU()
	if p.NumDevices() != 16 {
		t.Errorf("NumDevices = %d, want 16", p.NumDevices())
	}
	if p.MachineOf(0) != 0 || p.MachineOf(4) != 1 || p.MachineOf(15) != 3 {
		t.Error("MachineOf wrong")
	}
	if !p.SameMachine(0, 3) || p.SameMachine(3, 4) {
		t.Error("SameMachine wrong")
	}
	if p.InterconnectKind(0, 1) != LinkPCIe {
		t.Error("intra-machine link should be PCIe without NVLink")
	}
	if p.InterconnectKind(0, 5) != LinkNetwork {
		t.Error("cross-machine link should be network")
	}
	nv := SingleMachine8GPUNVLink()
	if nv.InterconnectKind(0, 1) != LinkNVLink {
		t.Error("NVLink platform should use NVLink intra-machine")
	}
}

func TestTransferTime(t *testing.T) {
	p := SingleMachine8GPU()
	if got := p.TransferTime(LinkPCIe, 0, 1); got != 0 {
		t.Errorf("zero bytes cost %v", got)
	}
	one := p.TransferTime(LinkPCIe, 12_000_000_000, 1)
	if one < 1.0 || one > 1.01 {
		t.Errorf("12GB over 12GB/s PCIe = %v s, want ~1", one)
	}
	// Network bandwidth is shared across concurrent devices.
	solo := p.TransferTime(LinkNetwork, 1e9, 1)
	shared := p.TransferTime(LinkNetwork, 1e9, 4)
	if shared < 3.5*solo {
		t.Errorf("4-way shared network %v not ~4x solo %v", shared, solo)
	}
}

func TestComputeTimes(t *testing.T) {
	p := SingleMachine8GPU()
	if p.DenseTime(4e12) < 0.99 || p.DenseTime(4e12) > 1.01 {
		t.Error("DenseTime calibration off")
	}
	if p.SparseTime(p.SparseFLOPS) != 1 {
		t.Error("SparseTime calibration off")
	}
	if p.SampleTime(int64(p.SampleEdgesPerSec)) != 1 {
		t.Error("SampleTime calibration off")
	}
}

func TestWithHelpers(t *testing.T) {
	p := SingleMachine8GPU()
	c := WithCache(p, 123)
	if c.DefaultCacheBytes != 123 || p.DefaultCacheBytes == 123 {
		t.Error("WithCache must copy")
	}
	d := WithDevices(p, 2, 2)
	if d.NumDevices() != 4 || p.NumDevices() != 8 {
		t.Error("WithDevices must copy")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	p := SingleMachine8GPU()
	bad := *p
	bad.DefaultCacheBytes = bad.GPUMemBytes + 1
	if err := bad.Validate(); err == nil {
		t.Error("cache > GPU memory accepted")
	}
	bad2 := *p
	bad2.Machines = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero machines accepted")
	}
}
