package hardware

// Presets mirroring the paper's evaluation platforms (§5.1). Rates are
// effective (not peak) figures for the paper's hardware: NVIDIA T4
// GPUs on PCIe 3.0 x16, machines linked by 100 Gbps Ethernet.

// GB is 1e9 bytes.
const GB = 1e9

func baseT4() Platform {
	p := Platform{
		GPUMemBytes:       16 * GB,
		DefaultCacheBytes: 4 * GB,
	}
	p.Bandwidth[LinkGPUMem] = 300 * GB // device memory bandwidth
	p.Bandwidth[LinkNVLink] = 40 * GB  // only used when HasNVLink
	p.Bandwidth[LinkPCIe] = 12 * GB    // PCIe 3.0 x16 effective
	p.Bandwidth[LinkNetwork] = 11 * GB // 100 Gbps effective, per machine
	p.Latency[LinkGPUMem] = 2e-6
	p.Latency[LinkNVLink] = 5e-6
	p.Latency[LinkPCIe] = 15e-6
	p.Latency[LinkNetwork] = 60e-6
	p.DenseFLOPS = 4e12        // T4 fp32 effective
	p.SparseFLOPS = 6e10       // memory-bound segment aggregation
	p.SampleEdgesPerSec = 25e7 // GPU-based sampling
	return p
}

// SingleMachine8GPU is the paper's single-machine platform: one
// g4dn.metal-style host with 8 T4 GPUs on PCIe 3.0, no NVLink.
func SingleMachine8GPU() *Platform {
	p := baseT4()
	p.Name = "single-machine-8gpu"
	p.Machines = 1
	p.GPUsPerMachine = 8
	return &p
}

// FourMachines4GPU is the paper's distributed platform: 4 machines with
// 4 GPUs each, connected by 100 Gbps Ethernet.
func FourMachines4GPU() *Platform {
	p := baseT4()
	p.Name = "four-machines-4gpu"
	p.Machines = 4
	p.GPUsPerMachine = 4
	return &p
}

// SingleMachine8GPUNVLink is an extension platform with NVSwitch-style
// peer-GPU links, used to study how fast interconnects shift the
// strategy trade-offs.
func SingleMachine8GPUNVLink() *Platform {
	p := baseT4()
	p.Name = "single-machine-8gpu-nvlink"
	p.Machines = 1
	p.GPUsPerMachine = 8
	p.HasNVLink = true
	return &p
}

// WithCache returns a copy of p with the per-GPU feature-cache budget
// replaced (the paper's Figure 8c sweep).
func WithCache(p *Platform, bytes int64) *Platform {
	cp := *p
	cp.DefaultCacheBytes = bytes
	return &cp
}

// WithDevices returns a copy of p with a different topology, keeping
// all rate constants.
func WithDevices(p *Platform, machines, gpusPerMachine int) *Platform {
	cp := *p
	cp.Machines = machines
	cp.GPUsPerMachine = gpusPerMachine
	return &cp
}
