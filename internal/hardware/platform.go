// Package hardware models the training platforms of the paper's
// evaluation: machines with multiple GPU devices connected by PCIe
// (optionally NVLink) inside a machine and Ethernet across machines.
// The model supplies the bandwidth/latency numbers that both the
// execution engine's simulated clock and APT's cost models consume —
// playing the role of the paper's "Prepare" step that profiles the
// speed of communication operators on real hardware.
package hardware

import "fmt"

// LinkKind classifies a data path by where the bytes move.
type LinkKind int

// Link kinds, ordered roughly by speed.
const (
	// LinkGPUMem is a local GPU-memory read (feature-cache hit).
	LinkGPUMem LinkKind = iota
	// LinkNVLink is a peer-GPU read over NVLink/NVSwitch.
	LinkNVLink
	// LinkPCIe is a GPU <-> local-CPU transfer (UVA reads, host copies).
	LinkPCIe
	// LinkNetwork is a cross-machine transfer.
	LinkNetwork
	numLinkKinds
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkGPUMem:
		return "gpu-mem"
	case LinkNVLink:
		return "nvlink"
	case LinkPCIe:
		return "pcie"
	case LinkNetwork:
		return "network"
	default:
		return fmt.Sprintf("link(%d)", int(k))
	}
}

// Platform describes a training cluster.
type Platform struct {
	Name           string
	Machines       int
	GPUsPerMachine int

	// GPUMemBytes is the device memory capacity (paper: 16 GB T4).
	GPUMemBytes int64
	// DefaultCacheBytes is the default feature-cache budget per GPU
	// (paper default: 4 GB).
	DefaultCacheBytes int64
	// HasNVLink enables peer-GPU feature reads.
	HasNVLink bool

	// Bandwidth[k] is bytes/second for link kind k. LinkNetwork
	// bandwidth is per machine and shared by its GPUs.
	Bandwidth [numLinkKinds]float64
	// Latency[k] is the per-operation fixed cost in seconds.
	Latency [numLinkKinds]float64

	// DenseFLOPS is effective dense-matmul throughput per GPU.
	DenseFLOPS float64
	// SparseFLOPS is effective throughput of memory-bound segment
	// (SpMM) operations per GPU.
	SparseFLOPS float64
	// SampleEdgesPerSec is GPU-based neighbor-sampling throughput
	// (edges drawn per second per GPU).
	SampleEdgesPerSec float64
}

// NumDevices returns the total GPU count.
func (p *Platform) NumDevices() int { return p.Machines * p.GPUsPerMachine }

// MachineOf returns the machine hosting global device dev.
func (p *Platform) MachineOf(dev int) int { return dev / p.GPUsPerMachine }

// SameMachine reports whether two devices share a machine.
func (p *Platform) SameMachine(a, b int) bool { return p.MachineOf(a) == p.MachineOf(b) }

// InterconnectKind returns the link used for device-to-device transfers
// between a and b: NVLink (if present) or PCIe within a machine, the
// network across machines.
func (p *Platform) InterconnectKind(a, b int) LinkKind {
	if p.SameMachine(a, b) {
		if p.HasNVLink {
			return LinkNVLink
		}
		return LinkPCIe
	}
	return LinkNetwork
}

// TransferTime returns the seconds to move n bytes over link kind k
// with `concurrent` devices contending for it (network bandwidth is
// shared per machine; PCIe and NVLink are per-device).
func (p *Platform) TransferTime(k LinkKind, n int64, concurrent int) float64 {
	if n <= 0 {
		return 0
	}
	bw := p.Bandwidth[k]
	if k == LinkNetwork && concurrent > 1 {
		bw /= float64(concurrent)
	}
	return p.Latency[k] + float64(n)/bw
}

// DenseTime returns seconds for f dense FLOPs on one GPU.
func (p *Platform) DenseTime(f float64) float64 { return f / p.DenseFLOPS }

// SparseTime returns seconds for f sparse (aggregation) FLOPs.
func (p *Platform) SparseTime(f float64) float64 { return f / p.SparseFLOPS }

// SampleTime returns seconds to sample e edges on one GPU.
func (p *Platform) SampleTime(e int64) float64 {
	return float64(e) / p.SampleEdgesPerSec
}

// Validate checks that the platform is internally consistent.
func (p *Platform) Validate() error {
	if p.Machines <= 0 || p.GPUsPerMachine <= 0 {
		return fmt.Errorf("hardware: bad topology %dx%d", p.Machines, p.GPUsPerMachine)
	}
	for k := LinkKind(0); k < numLinkKinds; k++ {
		if p.Bandwidth[k] <= 0 {
			return fmt.Errorf("hardware: bandwidth for %v not set", k)
		}
	}
	if p.DenseFLOPS <= 0 || p.SparseFLOPS <= 0 || p.SampleEdgesPerSec <= 0 {
		return fmt.Errorf("hardware: compute rates not set")
	}
	if p.DefaultCacheBytes > p.GPUMemBytes {
		return fmt.Errorf("hardware: cache %d exceeds GPU memory %d", p.DefaultCacheBytes, p.GPUMemBytes)
	}
	return nil
}
