package strategy

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, k := range append(append([]Kind{}, Core...), Hybrid) {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("xyz"); err == nil {
		t.Error("Parse accepted unknown strategy")
	}
	if k, err := Parse("snp"); err != nil || k != SNP {
		t.Error("lowercase parse failed")
	}
}

func TestNeedsPartition(t *testing.T) {
	want := map[Kind]bool{GDP: false, NFP: false, SNP: true, DNP: true, Hybrid: true}
	for k, w := range want {
		if k.NeedsPartition() != w {
			t.Errorf("%v.NeedsPartition() = %v, want %v", k, k.NeedsPartition(), w)
		}
	}
}

func TestCoreOrder(t *testing.T) {
	if len(Core) != 4 || Core[0] != GDP || Core[3] != DNP {
		t.Errorf("Core = %v", Core)
	}
}

func TestTable1QualitativeClaims(t *testing.T) {
	rows := Table1()
	byKind := map[Kind]Tradeoff{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// GDP: lowest graph/hidden shuffle, worst locality, no partition.
	if byKind[GDP].ShuffleHidden != Low || byKind[GDP].ShuffleGraph != Low {
		t.Error("GDP shuffle levels wrong")
	}
	// NFP shuffles the most hidden embeddings.
	if byKind[NFP].ShuffleHidden <= byKind[SNP].ShuffleHidden {
		t.Error("NFP hidden shuffle should exceed SNP's")
	}
	// DNP sits between GDP and SNP on hidden shuffling and can use
	// excess cache.
	if byKind[DNP].ShuffleHidden <= byKind[GDP].ShuffleHidden ||
		byKind[DNP].ShuffleHidden >= byKind[SNP].ShuffleHidden {
		t.Error("DNP should sit between GDP and SNP on hidden shuffle")
	}
	if !byKind[DNP].ExcessCache || byKind[SNP].ExcessCache || byKind[NFP].ExcessCache {
		t.Error("excess-cache column wrong")
	}
	if !byKind[NFP].PartialAggr || !byKind[SNP].PartialAggr || byKind[DNP].PartialAggr {
		t.Error("partial-aggregation column wrong")
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || VeryHigh.String() != "very-high" {
		t.Error("level names wrong")
	}
}
