// Package strategy defines the four parallelization strategies of the
// paper (§3.1) — graph data parallel, node feature parallel, source
// node parallel, and destination node parallel — plus the hybrid
// extension, together with their qualitative trade-off matrix
// (paper Table 1).
package strategy

import "fmt"

// Kind identifies a parallelization strategy.
type Kind int

// The strategies.
const (
	// GDP (graph data parallel): each GPU processes its own seed nodes
	// end to end; only the model is synchronized.
	GDP Kind = iota
	// NFP (node feature parallel): input features and the layer-1
	// model are partitioned by dimension across GPUs.
	NFP
	// SNP (source node parallel): the graph is edge-cut partitioned;
	// each GPU aggregates the contributions of its own source nodes to
	// remote virtual nodes.
	SNP
	// DNP (destination node parallel, the paper's proposal): layer-1
	// destination nodes are shipped to their managing GPU, which
	// computes their full embeddings.
	DNP
	// Hybrid (paper §5.2 future work, implemented here as an
	// extension): GDP across machines, SNP within each machine.
	Hybrid
	numKinds
)

// Core lists the four strategies APT's planner selects among.
var Core = []Kind{GDP, NFP, SNP, DNP}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GDP:
		return "GDP"
	case NFP:
		return "NFP"
	case SNP:
		return "SNP"
	case DNP:
		return "DNP"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse converts a strategy name to its Kind.
func Parse(s string) (Kind, error) {
	switch s {
	case "GDP", "gdp":
		return GDP, nil
	case "NFP", "nfp":
		return NFP, nil
	case "SNP", "snp":
		return SNP, nil
	case "DNP", "dnp":
		return DNP, nil
	case "Hybrid", "hybrid":
		return Hybrid, nil
	default:
		return 0, fmt.Errorf("strategy: unknown strategy %q", s)
	}
}

// NeedsPartition reports whether the strategy requires an edge-cut
// graph partitioning.
func (k Kind) NeedsPartition() bool { return k == SNP || k == DNP || k == Hybrid }

// Level grades a cost from low (0) to high (3) in the Table 1 matrix.
type Level int

// Cost levels.
const (
	Low Level = iota
	Medium
	High
	VeryHigh
)

// String implements fmt.Stringer.
func (l Level) String() string {
	return [...]string{"low", "medium", "high", "very-high"}[l]
}

// Tradeoff is one row of the paper's Table 1.
type Tradeoff struct {
	Kind              Kind
	ShuffleGraph      Level // cost of shuffling sampled subgraphs
	ShuffleFeature    Level // cost of loading/shuffling input features
	ShuffleHidden     Level // cost of shuffling hidden embeddings
	CacheLocality     Level // higher = better locality
	ExcessCache       bool  // can exploit cache beyond 1/C of features
	PartialAggr       bool  // performs partial aggregation
	RequiresPartition bool
}

// Table1 reproduces the paper's qualitative strategy comparison.
func Table1() []Tradeoff {
	return []Tradeoff{
		{Kind: GDP, ShuffleGraph: Low, ShuffleFeature: High, ShuffleHidden: Low, CacheLocality: Low, ExcessCache: true, PartialAggr: false, RequiresPartition: false},
		{Kind: NFP, ShuffleGraph: High, ShuffleFeature: Low, ShuffleHidden: VeryHigh, CacheLocality: High, ExcessCache: false, PartialAggr: true, RequiresPartition: false},
		{Kind: SNP, ShuffleGraph: Medium, ShuffleFeature: Low, ShuffleHidden: High, CacheLocality: High, ExcessCache: false, PartialAggr: true, RequiresPartition: true},
		{Kind: DNP, ShuffleGraph: Medium, ShuffleFeature: Medium, ShuffleHidden: Medium, CacheLocality: Medium, ExcessCache: true, PartialAggr: false, RequiresPartition: true},
	}
}
