package strategy_test

import (
	"fmt"

	"repro/internal/strategy"
)

// The strategies APT selects among, and which need a graph partition.
func Example() {
	for _, k := range strategy.Core {
		fmt.Printf("%v partition=%v\n", k, k.NeedsPartition())
	}
	// Output:
	// GDP partition=false
	// NFP partition=false
	// SNP partition=true
	// DNP partition=true
}

func ExampleParse() {
	k, _ := strategy.Parse("dnp")
	fmt.Println(k)
	// Output: DNP
}
