package fullgraph

import (
	"sync"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// RunEpoch performs one full-graph pass (forward over every node, loss
// on the train nodes, backward, synchronized model update).
func (t *Trainer) RunEpoch() EpochStats {
	t.Group.ResetClocks()
	n := t.cfg.Platform.NumDevices()
	var mu sync.Mutex
	var stats EpochStats
	comm.RunParallel(n, func(dev int) {
		st := t.deviceEpoch(dev)
		mu.Lock()
		stats.HaloBytes += st.HaloBytes
		stats.Loss += st.Loss
		if st.ActivationBytes > stats.ActivationBytes {
			stats.ActivationBytes = st.ActivationBytes
		}
		mu.Unlock()
	})
	mx := t.Group.StageMax(device.StageTrain, device.StageShuffle)
	stats.ComputeSec = mx[device.StageTrain]
	stats.HaloSec = mx[device.StageShuffle]
	stats.OOM = t.Group.AnyOOM()
	return stats
}

func (t *Trainer) real() bool { return t.cfg.Mode == Real }

// deviceEpoch runs one device through the pass.
func (t *Trainer) deviceEpoch(dev int) EpochStats {
	var st EpochStats
	p := t.parts[dev]
	model := t.models[dev]
	d := t.Group.Devices[dev]

	// Activation footprint: each layer materializes embeddings for all
	// sources of the partition — the memory wall of full-graph training.
	var peak int64
	dims := make([]int, len(model.Layers)+1)
	dims[0] = model.Layers[0].InDim()
	for l, layer := range model.Layers {
		dims[l+1] = layer.OutDim()
		footprint := int64(p.block.NumSrc()) * int64(dims[l]) * 4
		if footprint > peak {
			peak = footprint
		}
	}
	st.ActivationBytes = peak
	d.Alloc(peak)
	defer d.Free(peak)

	// Layer 0 reads its own rows straight out of the master feature
	// matrix through p.own (no gathered copy); upper layers pass the
	// previous layer's dense output.
	var h *tensor.Matrix
	ctxs := make([]nn.LayerCtx, len(model.Layers))
	for l, layer := range model.Layers {
		src, idx := h, []graph.NodeID(nil)
		if l == 0 && t.real() {
			src, idx = t.cfg.Feats, p.own
		}
		xsrc, bytes := t.haloExchangeForward(dev, src, idx, layer.InDim())
		st.HaloBytes += bytes
		t.chargeLayer(d, layer, p, false)
		if t.real() {
			out, ctx := layer.Forward(p.block, xsrc)
			ctxs[l] = ctx
			h = out
		}
	}

	// Loss over the device's train nodes, scaled by the global count.
	var dH *tensor.Matrix
	if t.real() {
		classes := model.Layers[len(model.Layers)-1].OutDim()
		logits := tensor.New(len(p.trainLocal), classes)
		labels := make([]int32, len(p.trainLocal))
		for i, pos := range p.trainLocal {
			copy(logits.Row(i), h.Row(int(pos)))
			labels[i] = t.cfg.Labels[p.trainIDs[i]]
		}
		loss, dLogits := nn.SoftmaxCrossEntropy(logits, labels, len(t.cfg.TrainNodes))
		st.Loss = loss
		dH = tensor.New(h.Rows, classes)
		for i, pos := range p.trainLocal {
			copy(dH.Row(int(pos)), dLogits.Row(i))
		}
	}

	for l := len(model.Layers) - 1; l >= 0; l-- {
		layer := model.Layers[l]
		t.chargeLayer(d, layer, p, true)
		var dXsrc *tensor.Matrix
		if t.real() {
			dXsrc = layer.Backward(p.block, ctxs[l], dH)
		}
		dPrev, bytes := t.haloExchangeBackward(dev, dXsrc, layer.InDim())
		st.HaloBytes += bytes
		dH = dPrev
	}

	// Model synchronization: allreduce flattened gradients.
	total := model.NumParamElements()
	if t.real() {
		flat := tensor.New(1, total)
		off := 0
		for _, pr := range model.Params() {
			copy(flat.Data[off:], pr.G.Data)
			off += len(pr.G.Data)
		}
		sum := t.Comm.AllReduce(dev, device.StageShuffle, flat, 0)
		off = 0
		for _, pr := range model.Params() {
			copy(pr.G.Data, sum.Data[off:off+len(pr.G.Data)])
			off += len(pr.G.Data)
		}
		t.opts[dev].Step(model.Params())
		model.ZeroGrad()
	} else {
		t.Comm.AllReduce(dev, device.StageShuffle, nil, int64(total)*4)
	}
	return st
}

// haloExchangeForward ships each device's boundary embeddings to the
// partitions whose halos need them and assembles the full source
// matrix (own rows first, halo rows filled from peers). When idx is
// non-nil, own row i lives at h.Row(idx[i]) — the layer-0 case, where
// h is the master feature matrix read through the partition's node
// list instead of a gathered copy.
func (t *Trainer) haloExchangeForward(dev int, h *tensor.Matrix, idx []graph.NodeID, dim int) (*tensor.Matrix, int64) {
	p := t.parts[dev]
	n := t.cfg.Platform.NumDevices()
	ownRow := func(r int32) []float32 {
		if idx != nil {
			return h.Row(int(idx[r]))
		}
		return h.Row(int(r))
	}
	outs := make([]comm.Payload, n)
	var sent int64
	for peer := 0; peer < n; peer++ {
		rows := p.sendTo[peer]
		if len(rows) == 0 || peer == dev {
			continue
		}
		if t.real() {
			m := tensor.New(len(rows), dim)
			for i, r := range rows {
				copy(m.Row(i), ownRow(r))
			}
			outs[peer] = comm.Payload{Mat: m}
		} else {
			outs[peer] = comm.Payload{Bytes: int64(len(rows)) * int64(dim) * 4}
		}
		sent += int64(len(rows)) * int64(dim) * 4
	}
	in := t.Comm.AllToAll(dev, device.StageShuffle, outs)
	if !t.real() {
		return nil, sent
	}
	xsrc := tensor.New(p.block.NumSrc(), dim)
	if idx != nil {
		tensor.GatherInto(xsrc, h, idx)
	} else {
		for i := 0; i < h.Rows; i++ {
			copy(xsrc.Row(i), h.Row(i))
		}
	}
	for peer := 0; peer < n; peer++ {
		if peer == dev || in[peer].Mat == nil {
			continue
		}
		for i, pos := range p.recvPos[peer] {
			copy(xsrc.Row(int(pos)), in[peer].Mat.Row(i))
		}
	}
	return xsrc, sent
}

// haloExchangeBackward returns halo-source gradients to their owners
// and accumulates them into each owner's own-node gradient.
func (t *Trainer) haloExchangeBackward(dev int, dXsrc *tensor.Matrix, dim int) (*tensor.Matrix, int64) {
	p := t.parts[dev]
	n := t.cfg.Platform.NumDevices()
	outs := make([]comm.Payload, n)
	var sent int64
	for peer := 0; peer < n; peer++ {
		pos := p.recvPos[peer]
		if len(pos) == 0 || peer == dev {
			continue
		}
		if t.real() {
			m := tensor.New(len(pos), dim)
			for i, r := range pos {
				copy(m.Row(i), dXsrc.Row(int(r)))
			}
			outs[peer] = comm.Payload{Mat: m}
		} else {
			outs[peer] = comm.Payload{Bytes: int64(len(pos)) * int64(dim) * 4}
		}
		sent += int64(len(pos)) * int64(dim) * 4
	}
	in := t.Comm.AllToAll(dev, device.StageShuffle, outs)
	if !t.real() {
		return nil, sent
	}
	dPrev := tensor.New(len(p.own), dim)
	for i := range p.own {
		copy(dPrev.Row(i), dXsrc.Row(i))
	}
	for peer := 0; peer < n; peer++ {
		if peer == dev || in[peer].Mat == nil {
			continue
		}
		for i, r := range p.sendTo[peer] {
			row := dPrev.Row(int(r))
			src := in[peer].Mat.Row(i)
			for j := range row {
				row[j] += src[j]
			}
		}
	}
	return dPrev, sent
}

// chargeLayer charges one layer's full-graph compute on the device.
func (t *Trainer) chargeLayer(d *device.Device, layer nn.Layer, p *partState, backward bool) {
	plat := t.cfg.Platform
	nSrc := float64(p.block.NumSrc())
	edges := float64(p.block.NumEdges())
	in, out := float64(layer.InDim()), float64(layer.OutDim())
	dense := 2 * nSrc * in * out
	sparse := 2 * edges * out
	if gat, ok := layer.(*nn.GATLayer); ok {
		dh := float64(gat.OutPerHead())
		heads := float64(gat.Heads)
		dense = 2 * nSrc * in * dh * heads
		sparse = 6 * edges * dh * heads
	}
	if backward {
		dense *= 2
		sparse *= 2
	}
	d.Charge(device.StageTrain, plat.DenseTime(dense)+plat.SparseTime(sparse))
}
