package fullgraph

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

type fixture struct {
	g      *graph.Graph
	feats  *tensor.Matrix
	labels []int32
	train  []graph.NodeID
	assign []int32
}

func newFixture(t testing.TB, nodes, devices int) *fixture {
	t.Helper()
	const classes = 4
	per := nodes / classes
	rng := graph.NewRNG(7)
	b := graph.NewBuilder(nodes)
	for c := 0; c < classes; c++ {
		base := c * per
		for i := 0; i < per*4; i++ {
			u, v := base+rng.Intn(per), base+rng.Intn(per)
			if u != v {
				b.AddUndirected(int32(u), int32(v))
			}
		}
	}
	for i := 0; i < nodes/8; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u != v {
			b.AddUndirected(int32(u), int32(v))
		}
	}
	g := b.Build(true)
	feats := tensor.New(nodes, 8)
	labels := make([]int32, nodes)
	for v := 0; v < nodes; v++ {
		c := v / per
		if c >= classes {
			c = classes - 1
		}
		labels[v] = int32(c)
		for j := 0; j < 8; j++ {
			feats.Set(v, j, 0.3*rng.NormFloat32())
		}
		feats.Set(v, c, feats.At(v, c)+1)
	}
	var train []graph.NodeID
	for v := 0; v < nodes; v += 2 {
		train = append(train, graph.NodeID(v))
	}
	assign := partition.Multilevel(g, devices, partition.MultilevelConfig{Seed: 3, EdgeBalanced: true}).Assign
	return &fixture{g: g, feats: feats, labels: labels, train: train, assign: assign}
}

func (f *fixture) config(devices int, mode Mode) Config {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devices)
	assign := f.assign
	if devices == 1 {
		assign = make([]int32, f.g.NumNodes())
	}
	cfg := Config{
		Platform:   p,
		Graph:      f.g,
		TrainNodes: f.train,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(8, 12, 4, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewSGD(0.5, 0) },
		Assign:       assign,
		Mode:         mode,
		Seed:         11,
	}
	if mode == Real {
		cfg.Feats = f.feats
		cfg.Labels = f.labels
	}
	return cfg
}

// TestMultiDeviceMatchesSingle is the halo-exchange correctness check:
// a 4-device full-graph pass must produce the same model as a
// single-device pass (up to float reassociation).
func TestMultiDeviceMatchesSingle(t *testing.T) {
	f := newFixture(t, 240, 4)
	single, err := New(f.config(1, Real))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(f.config(4, Real))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s := single.RunEpoch()
		m := multi.RunEpoch()
		if d := s.Loss - m.Loss; d > 1e-4 || d < -1e-4 {
			t.Fatalf("epoch %d: loss %v vs %v", i, s.Loss, m.Loss)
		}
	}
	ps, pm := single.Model(0).Params(), multi.Model(0).Params()
	for i := range ps {
		if d := ps[i].W.MaxAbsDiff(pm[i].W); d > 1e-3 {
			t.Errorf("param %d differs by %g between 1 and 4 devices", i, d)
		}
	}
	// Replicas stay in sync.
	p0 := multi.Model(0).Params()
	for dev := 1; dev < 4; dev++ {
		pd := multi.Model(dev).Params()
		for i := range p0 {
			if p0[i].W.MaxAbsDiff(pd[i].W) > 1e-6 {
				t.Fatalf("device %d replica diverged", dev)
			}
		}
	}
}

func TestFullGraphLearns(t *testing.T) {
	f := newFixture(t, 240, 4)
	cfg := f.config(4, Real)
	cfg.NewOptimizer = func() nn.Optimizer { return nn.NewAdam(0.05) }
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.RunEpoch().Loss
	var last float64
	for i := 0; i < 30; i++ {
		last = tr.RunEpoch().Loss
	}
	if last >= first/2 {
		t.Errorf("full-graph training failed to learn: %v -> %v", first, last)
	}
}

func TestGATFullGraph(t *testing.T) {
	f := newFixture(t, 180, 3)
	cfg := f.config(3, Real)
	cfg.NewModel = func() *nn.Model { return nn.NewGAT(8, 4, 2, 4, 2) }
	multi, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgS := f.config(1, Real)
	cfgS.NewModel = cfg.NewModel
	single, err := New(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	sm := single.RunEpoch()
	mm := multi.RunEpoch()
	if d := sm.Loss - mm.Loss; d > 1e-4 || d < -1e-4 {
		t.Errorf("GAT full-graph loss differs: %v vs %v", sm.Loss, mm.Loss)
	}
}

func TestAccountingModeVolumesAndOOM(t *testing.T) {
	f := newFixture(t, 400, 4)
	cfg := f.config(4, Accounting)
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.RunEpoch()
	if st.HaloBytes <= 0 {
		t.Error("no halo traffic recorded")
	}
	if st.ComputeSec <= 0 || st.HaloSec <= 0 {
		t.Errorf("missing stage times: %+v", st)
	}
	if st.EpochTime() != st.ComputeSec+st.HaloSec {
		t.Error("EpochTime does not decompose")
	}
	if tr.HaloFraction() <= 0 || tr.HaloFraction() >= 1 {
		t.Errorf("halo fraction %v out of range", tr.HaloFraction())
	}

	// Tiny device memory: the per-layer activations overflow — the
	// memory wall that makes full-graph training infeasible at scale.
	small := f.config(4, Accounting)
	tinyPlat := *small.Platform
	tinyPlat.GPUMemBytes = 1024
	tinyPlat.DefaultCacheBytes = 0
	small.Platform = &tinyPlat
	tr2, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	if st := tr2.RunEpoch(); !st.OOM {
		t.Error("activation overflow not flagged on tiny device")
	}
}

func TestValidation(t *testing.T) {
	f := newFixture(t, 100, 2)
	cfg := f.config(2, Real)
	cfg.Assign = []int32{0}
	if _, err := New(cfg); err == nil {
		t.Error("accepted short partition")
	}
	cfg2 := f.config(2, Real)
	cfg2.Feats = nil
	if _, err := New(cfg2); err == nil {
		t.Error("accepted real mode without features")
	}
	cfg3 := f.config(2, Real)
	cfg3.NewModel = nil
	if _, err := New(cfg3); err == nil {
		t.Error("accepted missing model")
	}
}
