// Package fullgraph implements multi-device full-graph GNN training in
// the style of the early systems the paper's related work discusses
// (NeuGraph, ROC, DGCL): the whole graph is partitioned across
// devices, every epoch is one full forward/backward pass over all
// nodes, and each layer exchanges boundary ("halo") embeddings between
// partitions. It exists as the baseline that motivates sampling-based
// training — per-pass computation and communication are heavy, and the
// per-layer activations of all nodes must fit in device memory, which
// fails at scale (the extension experiment shows both effects).
package fullgraph

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Mode mirrors engine.Mode: real training or volume accounting.
type Mode int

// Execution modes.
const (
	Real Mode = iota
	Accounting
)

// Config assembles a full-graph training run.
type Config struct {
	Platform *hardware.Platform
	Graph    *graph.Graph
	// Feats/Labels are required in Real mode.
	Feats  *tensor.Matrix
	Labels []int32
	// TrainNodes are the labeled nodes the loss covers.
	TrainNodes []graph.NodeID
	// NewModel builds one replica per device.
	NewModel     func() *nn.Model
	NewOptimizer func() nn.Optimizer
	// Assign maps node -> owning device (an edge-cut partitioning).
	Assign []int32
	Mode   Mode
	Seed   uint64
}

// Trainer executes full-graph training.
type Trainer struct {
	cfg    Config
	Group  *device.Group
	Comm   *comm.Comm
	models []*nn.Model
	opts   []nn.Optimizer
	parts  []*partState
}

// partState is one device's static structures.
type partState struct {
	// own lists the device's nodes (global IDs).
	own []graph.NodeID
	// block is the device's layer computation graph: Dst = own, Src =
	// own ++ halo (dst-first so attention layers work).
	block *sample.Block
	// halo lists remote sources in Src order (Src[len(own):]).
	halo []graph.NodeID
	// sendTo[p] lists the positions (into own) of the nodes this
	// device must ship to device p each layer.
	sendTo [][]int32
	// recvPos[p] lists the positions (into Src) that device p's
	// shipment fills.
	recvPos [][]int32
	// trainLocal are positions (into own) of this device's train nodes.
	trainLocal []int32
	// trainIDs are their global IDs.
	trainIDs []graph.NodeID
}

// EpochStats reports one full-graph epoch.
type EpochStats struct {
	// ComputeSec / HaloSec decompose the epoch (max over devices).
	ComputeSec, HaloSec float64
	// HaloBytes is the total boundary-exchange volume (all layers,
	// forward + backward).
	HaloBytes int64
	// ActivationBytes is the peak per-device activation footprint.
	ActivationBytes int64
	// Loss is the full-batch training loss (real mode).
	Loss float64
	// OOM reports device-memory overflow (the reason full-graph
	// training fails at scale).
	OOM bool
}

// EpochTime sums the stage maxima.
func (s EpochStats) EpochTime() float64 { return s.ComputeSec + s.HaloSec }

// New validates the configuration and builds the per-device structures.
func New(cfg Config) (*Trainer, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Graph == nil || cfg.NewModel == nil || cfg.Assign == nil {
		return nil, fmt.Errorf("fullgraph: graph, model, and partition are required")
	}
	if len(cfg.Assign) != cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("fullgraph: partition covers %d of %d nodes",
			len(cfg.Assign), cfg.Graph.NumNodes())
	}
	if cfg.Mode == Real && (cfg.Feats == nil || cfg.Labels == nil) {
		return nil, fmt.Errorf("fullgraph: real mode needs features and labels")
	}
	t := &Trainer{cfg: cfg}
	t.Group = device.NewGroup(cfg.Platform)
	t.Comm = comm.New(t.Group)
	n := cfg.Platform.NumDevices()
	for d := 0; d < n; d++ {
		m := cfg.NewModel()
		m.Init(graph.NewRNG(cfg.Seed))
		t.models = append(t.models, m)
		if cfg.NewOptimizer != nil {
			t.opts = append(t.opts, cfg.NewOptimizer())
		} else {
			t.opts = append(t.opts, nn.NewSGD(0.1, 0))
		}
	}
	t.buildParts()
	return t, nil
}

// Model returns device dev's replica.
func (t *Trainer) Model(dev int) *nn.Model { return t.models[dev] }

// buildParts constructs each device's block and halo-exchange plan.
func (t *Trainer) buildParts() {
	g := t.cfg.Graph
	n := t.cfg.Platform.NumDevices()
	t.parts = make([]*partState, n)
	for d := 0; d < n; d++ {
		t.parts[d] = &partState{
			sendTo:  make([][]int32, n),
			recvPos: make([][]int32, n),
		}
	}
	ownPos := make([]int32, g.NumNodes()) // position of v within its owner
	for v := 0; v < g.NumNodes(); v++ {
		p := t.parts[t.cfg.Assign[v]]
		ownPos[v] = int32(len(p.own))
		p.own = append(p.own, graph.NodeID(v))
	}
	for d := 0; d < n; d++ {
		p := t.parts[d]
		blk := &sample.Block{Dst: p.own, EdgePtr: make([]int64, len(p.own)+1)}
		blk.Src = append(blk.Src, p.own...) // dst-first
		srcPos := make(map[graph.NodeID]int32, len(p.own)*2)
		for i, v := range p.own {
			srcPos[v] = int32(i)
		}
		for i, v := range p.own {
			for _, u := range g.Neighbors(v) {
				pos, ok := srcPos[u]
				if !ok {
					pos = int32(len(blk.Src))
					blk.Src = append(blk.Src, u)
					srcPos[u] = pos
					p.halo = append(p.halo, u)
					owner := int(t.cfg.Assign[u])
					t.parts[owner].sendTo[d] = append(t.parts[owner].sendTo[d], ownPos[u])
					p.recvPos[owner] = append(p.recvPos[owner], pos)
				}
				blk.SrcIdx = append(blk.SrcIdx, pos)
			}
			blk.EdgePtr[i+1] = int64(len(blk.SrcIdx))
		}
		p.block = blk
	}
	for _, v := range t.cfg.TrainNodes {
		p := t.parts[t.cfg.Assign[v]]
		p.trainLocal = append(p.trainLocal, ownPos[v])
		p.trainIDs = append(p.trainIDs, v)
	}
}

// HaloFraction reports the average fraction of each device's sources
// that are remote — the communication intensity of the partitioning.
func (t *Trainer) HaloFraction() float64 {
	var halo, src float64
	for _, p := range t.parts {
		halo += float64(len(p.halo))
		src += float64(p.block.NumSrc())
	}
	if src == 0 {
		return 0
	}
	return halo / src
}
