package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeEndToEnd drives the full pipeline exclusively through the
// public facade, the way an importing module would.
func TestFacadeEndToEnd(t *testing.T) {
	spec, err := repro.DatasetPresets(0.04)[1], error(nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.Classes = 8
	spec.HomophilyDegree = 6
	ds := repro.BuildDataset(spec, true)

	task := repro.Task{
		Graph:   ds.Graph,
		Feats:   ds.Feats,
		Labels:  ds.Labels,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *repro.Model {
			return repro.NewGraphSAGE(spec.FeatDim, 16, spec.Classes, 2)
		},
		NewOptimizer: func() repro.Optimizer { return repro.NewAdam(0.02) },
		Sampling:     repro.SamplingConfig{Fanouts: []int{8, 8}},
		BatchSize:    64,
		Platform:     repro.WithDevices(repro.SingleMachine8GPU(), 1, 2),
		CacheBytes:   ds.CacheBytesFraction(0.08),
		Seed:         5,
	}
	apt, err := repro.NewAPT(task)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apt.Train(12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || len(res.Epochs) != 12 {
		t.Fatal("facade Train incomplete")
	}
	acc := repro.Evaluate(ds.Graph, res.Model, ds.Feats, ds.Labels,
		ds.TestSeeds, task.Sampling, 128, 1)
	if acc <= 0.2 {
		t.Errorf("facade-trained accuracy %.3f too low", acc)
	}
	if plan := repro.DescribePlan(res.Choice, task.NewModel()); len(plan) == 0 {
		t.Error("empty plan description")
	}
	for _, k := range []repro.Strategy{repro.GDP, repro.NFP, repro.SNP, repro.DNP, repro.Hybrid} {
		if k.String() == "" {
			t.Error("unnamed strategy")
		}
	}
}

func TestFacadeFullGraph(t *testing.T) {
	spec := repro.DatasetPresets(0.03)[0]
	spec.Classes = 4
	ds := repro.BuildDataset(spec, false)
	part := repro.MultilevelPartition(ds.Graph, 2, repro.PartitionConfig{Seed: 1, EdgeBalanced: true})
	tr, err := repro.NewFullGraphTrainer(repro.FullGraphConfig{
		Platform:   repro.SingleMachine8GPU(),
		Graph:      ds.Graph,
		TrainNodes: ds.TrainSeeds,
		NewModel: func() *repro.Model {
			return repro.NewGraphSAGE(spec.FeatDim, 8, spec.Classes, 2)
		},
		Assign: part.Assign,
		Mode:   repro.FullGraphAccounting,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := tr.RunEpoch(); st.EpochTime() <= 0 {
		t.Error("full-graph facade epoch has no time")
	}
}
