// Custom graphs: feed your own edge list (SNAP text format) through
// the full APT pipeline. This example embeds Zachary's karate club —
// the classic 2-community graph — builds features from the community
// labels, and trains with automatic strategy selection on 2 simulated
// GPUs.
//
//	go run ./examples/custom_graph
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Zachary's karate club (34 nodes; instructor faction vs administrator
// faction after the split).
const karateEdges = `
0 1
0 2
0 3
0 4
0 5
0 6
0 7
0 8
0 10
0 11
0 12
0 13
0 17
0 19
0 21
0 31
1 2
1 3
1 7
1 13
1 17
1 19
1 21
1 30
2 3
2 7
2 8
2 9
2 13
2 27
2 28
2 32
3 7
3 12
3 13
4 6
4 10
5 6
5 10
5 16
6 16
8 30
8 32
8 33
9 33
13 33
14 32
14 33
15 32
15 33
18 32
18 33
19 33
20 32
20 33
22 32
22 33
23 25
23 27
23 29
23 32
23 33
24 25
24 27
24 31
25 31
26 29
26 33
27 33
28 31
28 33
29 32
29 33
30 32
30 33
31 32
31 33
32 33
`

// The administrator's faction after the split (node 33's side).
var faction33 = map[int]bool{
	8: true, 9: true, 14: true, 15: true, 18: true, 20: true, 22: true,
	23: true, 24: true, 25: true, 26: true, 27: true, 28: true, 29: true,
	30: true, 31: true, 32: true, 33: true,
}

func main() {
	g, err := graph.ReadEdgeList(strings.NewReader(karateEdges),
		graph.EdgeListOptions{Undirected: true, DropSelfLoops: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("karate club: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	n := g.NumNodes()
	labels := make([]int32, n)
	feats := tensor.New(n, 4)
	rng := graph.NewRNG(1)
	for v := 0; v < n; v++ {
		if faction33[v] {
			labels[v] = 1
		}
		for j := 0; j < 4; j++ {
			feats.Set(v, j, 0.5*rng.NormFloat32())
		}
		feats.Set(v, int(labels[v]), feats.At(v, int(labels[v]))+1)
	}
	seeds := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		seeds = append(seeds, graph.NodeID(v))
	}

	task := core.Task{
		Graph:   g,
		Feats:   feats,
		Labels:  labels,
		FeatDim: 4,
		Seeds:   seeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(4, 8, 2, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.05) },
		Sampling:     sample.Config{Fanouts: []int{5, 5}},
		BatchSize:    8,
		Platform:     hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2),
		Seed:         4,
	}
	apt, err := core.New(task)
	if err != nil {
		log.Fatal(err)
	}
	res, err := apt.Train(30)
	if err != nil {
		log.Fatal(err)
	}
	q := partition.Evaluate(g, apt.Partition())
	fmt.Printf("APT selected %v; 2-way partition edge cut %.0f%%\n", res.Choice, q.CutRatio*100)
	acc := engine.Evaluate(g, res.Model, feats, labels, seeds, task.Sampling, 34, 1)
	fmt.Printf("faction classification accuracy after %d epochs: %.2f\n", len(res.Epochs), acc)
}
