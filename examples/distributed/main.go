// Distributed training: 16 simulated GPUs across 4 machines connected
// by 100 Gbps Ethernet (the paper's multi-machine platform), including
// the hybrid GDP-across-machines / SNP-within-machine extension the
// paper proposes as future work.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	spec, err := dataset.ByAbbr("FS", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	ds := dataset.Build(spec, false)
	p := hardware.FourMachines4GPU()
	fmt.Printf("platform: %d machines x %d GPUs, %s network shared per machine\n",
		p.Machines, p.GPUsPerMachine, "100GbE")

	task := core.Task{
		Graph:   ds.Graph,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, 128, spec.Classes, 3)
		},
		Sampling:   sample.Config{Fanouts: []int{10, 10, 10}},
		BatchSize:  64,
		Platform:   p,
		CacheBytes: ds.CacheBytesFraction(0.08),
		Seed:       7,
	}
	apt, err := core.New(task)
	if err != nil {
		log.Fatal(err)
	}
	choice, err := apt.Plan()
	if err != nil {
		log.Fatal(err)
	}

	kinds := append(append([]strategy.Kind{}, strategy.Core...), strategy.Hybrid)
	rows := []trace.Row{}
	for _, k := range kinds {
		eng, err := apt.BuildEngine(k)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.RunEpoch()
		rows = append(rows, trace.Row{
			Label:  k.String(),
			Marked: k == choice,
			Segments: []trace.Seg{
				{Name: "sampling", Sec: st.SamplingBar()},
				{Name: "loading", Sec: st.LoadSec},
				{Name: "training", Sec: st.TrainBar()},
			},
			Note: fmt.Sprintf("hidden shuffle %.1f MB", float64(st.Totals.HiddenShuffleBytes())/1e6),
		})
	}
	fmt.Print(trace.RenderBars("FS distributed, GraphSAGE hidden 128 (+ hybrid extension)", rows))
	fmt.Println("\nInter-machine communication is the bottleneck: strategies that")
	fmt.Println("shuffle hidden embeddings across machines (SNP, NFP) degrade, while")
	fmt.Println("the hybrid keeps SNP's cache benefits inside each machine without")
	fmt.Println("crossing the network (paper §5.2).")
}
