// Strategy comparison: run all four parallelization strategies on the
// same task (accounting mode) and show the epoch-time decomposition
// the paper's figures report, with APT's selection marked — the
// "no consistent winner" observation on two different workloads.
//
//	go run ./examples/strategy_compare
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	for _, cfg := range []struct {
		abbr   string
		hidden int
		why    string
	}{
		{"PS", 32, "skewed accesses: caching works, GDP avoids all shuffling"},
		{"FS", 8, "scattered accesses + tiny hidden dim: pushing compute to the features (SNP) wins"},
	} {
		spec, err := dataset.ByAbbr(cfg.abbr, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		ds := dataset.Build(spec, false) // accounting mode: no feature payload
		task := core.Task{
			Graph:   ds.Graph,
			FeatDim: spec.FeatDim,
			Seeds:   ds.TrainSeeds,
			NewModel: func() *nn.Model {
				return nn.NewGraphSAGE(spec.FeatDim, cfg.hidden, spec.Classes, 3)
			},
			Sampling:   sample.Config{Fanouts: []int{10, 10, 10}},
			BatchSize:  64,
			Platform:   hardware.SingleMachine8GPU(),
			CacheBytes: ds.CacheBytesFraction(0.08),
			Seed:       7,
		}
		apt, err := core.New(task)
		if err != nil {
			log.Fatal(err)
		}
		choice, err := apt.Plan()
		if err != nil {
			log.Fatal(err)
		}

		rows := []trace.Row{}
		for _, k := range strategy.Core {
			eng, err := apt.BuildEngine(k)
			if err != nil {
				log.Fatal(err)
			}
			st := eng.RunEpoch()
			rows = append(rows, trace.Row{
				Label:  k.String(),
				Marked: k == choice,
				Segments: []trace.Seg{
					{Name: "sampling", Sec: st.SamplingBar()},
					{Name: "loading", Sec: st.LoadSec},
					{Name: "training", Sec: st.TrainBar()},
				},
			})
		}
		title := fmt.Sprintf("%s, GraphSAGE hidden %d — %s", cfg.abbr, cfg.hidden, cfg.why)
		fmt.Print(trace.RenderBars(title, rows))
		fmt.Printf("(* = APT's selection)\n\n")
	}
}
