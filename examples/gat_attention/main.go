// Attention models: train GAT and show why attention changes the
// strategy trade-offs (paper §3.3 and Figure 10) — the destination
// needs a complete view of its sources, so SNP/NFP pay per-source
// "extra communication" while GDP and DNP attend locally.
//
//	go run ./examples/gat_attention
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	// Part 1: real GAT training with APT on a small graph.
	spec, err := dataset.ByAbbr("PS", 0.04)
	if err != nil {
		log.Fatal(err)
	}
	spec.HomophilyDegree = 10
	spec.Classes = 8
	ds := dataset.Build(spec, true)
	task := core.Task{
		Graph:   ds.Graph,
		Feats:   ds.Feats,
		Labels:  ds.Labels,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGAT(spec.FeatDim, 8, 4, spec.Classes, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.02) },
		Sampling:     sample.Config{Fanouts: []int{10, 10}},
		BatchSize:    64,
		Platform:     hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4),
		CacheBytes:   ds.CacheBytesFraction(0.08),
		Seed:         3,
	}
	apt, err := core.New(task)
	if err != nil {
		log.Fatal(err)
	}
	res, err := apt.Train(12)
	if err != nil {
		log.Fatal(err)
	}
	acc := engine.Evaluate(ds.Graph, res.Model, ds.Feats, ds.Labels,
		ds.TestSeeds, task.Sampling, 256, 1)
	fmt.Printf("GAT (4 heads x 8): APT chose %v; final loss %.4f, test accuracy %.3f\n\n",
		res.Choice, res.Epochs[len(res.Epochs)-1].MeanLoss, acc)

	// Part 2: the attention communication penalty, per strategy.
	bigSpec, err := dataset.ByAbbr("PS", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	big := dataset.Build(bigSpec, false)
	task2 := task
	task2.Graph = big.Graph
	task2.Feats = nil
	task2.Labels = nil
	task2.Seeds = big.TrainSeeds
	task2.FeatDim = bigSpec.FeatDim
	task2.NewModel = func() *nn.Model {
		return nn.NewGAT(bigSpec.FeatDim, 8, 4, bigSpec.Classes, 2)
	}
	task2.Platform = hardware.SingleMachine8GPU()
	task2.CacheBytes = big.CacheBytesFraction(0.08)
	apt2, err := core.New(task2)
	if err != nil {
		log.Fatal(err)
	}
	choice, err := apt2.Plan()
	if err != nil {
		log.Fatal(err)
	}
	rows := []trace.Row{}
	for _, k := range strategy.Core {
		eng, err := apt2.BuildEngine(k)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.RunEpoch()
		rows = append(rows, trace.Row{
			Label:  k.String(),
			Marked: k == choice,
			Segments: []trace.Seg{
				{Name: "sampling", Sec: st.SamplingBar()},
				{Name: "loading", Sec: st.LoadSec},
				{Name: "training", Sec: st.TrainBar()},
			},
			Note: fmt.Sprintf("hidden shuffle %.1f MB", float64(st.Totals.HiddenShuffleBytes())/1e6),
		})
	}
	fmt.Print(trace.RenderBars("GAT epoch decomposition: SNP/NFP ship per-source projections", rows))
}
