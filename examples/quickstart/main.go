// Quickstart: train a GraphSAGE model with APT's automatic strategy
// selection on a small synthetic graph, end to end in real mode.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
)

func main() {
	// 1. Data: a synthetic Friendster-like graph with label-correlated
	//    features (stand-in for loading OGB data).
	spec, err := dataset.ByAbbr("FS", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	spec.HomophilyDegree = 10
	spec.Classes = 8 // easier task at the example's tiny scale
	ds := dataset.Build(spec, true)
	fmt.Printf("graph: %d nodes, %d edges, %d-dim features, %d classes\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges(), spec.FeatDim, spec.Classes)

	// 2. Task: model, sampling, platform. APT treats the model and the
	//    sampler as black boxes.
	task := core.Task{
		Graph:   ds.Graph,
		Feats:   ds.Feats,
		Labels:  ds.Labels,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, 32, spec.Classes, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.02) },
		Sampling:     sample.Config{Fanouts: []int{10, 10}},
		BatchSize:    64,
		Platform:     hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4),
		CacheBytes:   ds.CacheBytesFraction(0.08),
		Seed:         1,
	}

	// 3. Train: APT profiles the platform, dry-runs one epoch, picks
	//    the fastest strategy, and trains.
	apt, err := core.New(task)
	if err != nil {
		log.Fatal(err)
	}
	result, err := apt.Train(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner estimates:\n%s", core.FormatEstimates(result.Estimates))
	fmt.Printf("APT selected %v (planning took %.2fs wall)\n\n", result.Choice, result.PlanWallSeconds)
	for i, ep := range result.Epochs {
		fmt.Printf("epoch %d: loss %.4f, simulated epoch time %.4fs\n", i+1, ep.MeanLoss, ep.EpochTime())
	}

	// 4. Evaluate on held-out nodes.
	acc := engine.Evaluate(ds.Graph, result.Model, ds.Feats, ds.Labels,
		ds.TestSeeds, task.Sampling, 256, 1)
	fmt.Printf("\ntest accuracy: %.3f\n", acc)
}
