package repro

// Benchmark harness: one benchmark per paper table and figure (run via
// internal/experiments at a reduced scale so `go test -bench=.`
// completes in minutes) plus micro-benchmarks for the substrate
// kernels. For full-scale reports use `go run ./cmd/aptbench`.

import (
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// benchEnv builds a small-scale experiment environment per benchmark.
func benchEnv() *experiments.Env {
	return experiments.NewEnv(experiments.Options{Scale: 0.06, Epochs: 1, Devices: 8})
}

func runExperiment(b *testing.B, fn func(*experiments.Env) (string, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := benchEnv()
		report, err := fn(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(report) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFigure1NoConsistentWinner(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure1)
}

func BenchmarkFigure6AccuracyEquivalence(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure6)
}

func BenchmarkFigure7BaselineComparison(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure7)
}

func BenchmarkFigure8Hidden(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure8Hidden)
}

func BenchmarkFigure8Fanout(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure8Fanout)
}

func BenchmarkFigure8Cache(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure8Cache)
}

func BenchmarkFigure9Distributed(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure9)
}

func BenchmarkFigure10GAT(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure10)
}

func BenchmarkFigure11RandomPartition(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure11)
}

func BenchmarkFigure12CostModelAccuracy(b *testing.B) {
	runExperiment(b, (*experiments.Env).Figure12)
}

func BenchmarkTable2DatasetStats(b *testing.B) {
	runExperiment(b, (*experiments.Env).Table2)
}

func BenchmarkTable3AccessSkew(b *testing.B) {
	runExperiment(b, (*experiments.Env).Table3)
}

func BenchmarkTable4MaxSpeedup(b *testing.B) {
	runExperiment(b, (*experiments.Env).Table4)
}

func BenchmarkAblationFullCost(b *testing.B) {
	runExperiment(b, (*experiments.Env).AblationFullCost)
}

func BenchmarkAblationDryRunEpochs(b *testing.B) {
	runExperiment(b, (*experiments.Env).AblationDryRunEpochs)
}

func BenchmarkAblationCachePolicy(b *testing.B) {
	runExperiment(b, (*experiments.Env).AblationCachePolicy)
}

func BenchmarkAblationPipelining(b *testing.B) {
	runExperiment(b, (*experiments.Env).AblationPipelining)
}

func BenchmarkExtensionHybrid(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionHybrid)
}

func BenchmarkExtensionNVLink(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionNVLink)
}

func BenchmarkExtensionCPUCache(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionCPUCache)
}

func BenchmarkExtensionLayerWise(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionLayerWise)
}

// --- substrate micro-benchmarks ---

func BenchmarkMatMul128(b *testing.B) {
	rng := graph.NewRNG(1)
	x := tensor.New(1024, 128)
	w := tensor.New(128, 128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat32()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat32()
	}
	b.SetBytes(int64(1024 * 128 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tensor.MatMul(x, w)
		tensor.Put(m)
	}
}

func BenchmarkSegmentMean(b *testing.B) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 20000, AvgDegree: 16, Seed: 1})
	s := sample.NewSampler(g, sample.Config{Fanouts: []int{10, 10}}, graph.NewRNG(2))
	seeds := make([]graph.NodeID, 256)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 7)
	}
	mb := s.Sample(seeds)
	blk := mb.Layer1()
	x := tensor.New(blk.NumSrc(), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tensor.SegmentMean(blk.EdgePtr, blk.SrcIdx, x)
		tensor.Put(m)
	}
}

func BenchmarkNeighborSampling(b *testing.B) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 50000, AvgDegree: 16, Seed: 1})
	s := sample.NewSampler(g, sample.Config{Fanouts: []int{10, 10, 10}}, graph.NewRNG(2))
	seeds := make([]graph.NodeID, 256)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 11)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(seeds)
	}
}

// BenchmarkServeThroughput drives the online inference server with
// concurrent single-node requests and reports, besides ns/op, the
// latency percentiles and mean coalesced batch size the micro-batcher
// achieved. Serving quality = high seeds/batch at low p99-ms.
func BenchmarkServeThroughput(b *testing.B) {
	spec, err := dataset.ByAbbr("PS", 0.02)
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Build(spec, true)
	m := nn.NewGraphSAGE(ds.FeatDim, 32, ds.Classes, 2)
	m.Init(graph.NewRNG(5))
	srv, err := Serve(ServeConfig{
		Graph:      ds.Graph,
		Feats:      ds.Feats,
		Model:      m,
		Sampling:   sample.Config{Fanouts: []int{5, 5}},
		Platform:   hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4),
		CacheBytes: ds.CacheBytesFraction(0.1),
		Seed:       9,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var client atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(8) // clients ≫ workers, so the queue backs up and batches form
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := graph.NewRNG(uint64(0xfeed + client.Add(1)*977))
		nodes := make([]graph.NodeID, 1)
		for pb.Next() {
			nodes[0] = graph.NodeID(rng.Intn(ds.Graph.NumNodes()))
			if _, err := srv.Predict(nodes); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(st.P50Ms, "p50-ms")
	b.ReportMetric(st.P99Ms, "p99-ms")
	b.ReportMetric(st.MeanBatchSeeds, "seeds/batch")
	b.ReportMetric(100*st.CacheHitRate, "cache-hit-%")
}

// benchEpochEngine assembles a small real-mode GDP training run for the
// sequential-vs-pipelined epoch benchmarks.
func benchEpochEngine(b *testing.B, pipeline bool) *engine.Engine {
	b.Helper()
	const (
		nodes   = 4000
		dim     = 16
		classes = 4
		devices = 4
	)
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: nodes, AvgDegree: 12, Seed: 3})
	rng := graph.NewRNG(17)
	feats := tensor.New(nodes, dim)
	for i := range feats.Data {
		feats.Data[i] = rng.NormFloat32()
	}
	labels := make([]int32, nodes)
	for i := range labels {
		labels[i] = int32(rng.Intn(classes))
	}
	seeds := make([]graph.NodeID, 0, nodes/2)
	for v := 0; v < nodes; v += 2 {
		seeds = append(seeds, graph.NodeID(v))
	}
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devices)
	store := cache.NewStore(p, nodes, dim, feats)
	store.HostByRange()
	// Tiered cache, as a calibrated run would configure it: the hottest
	// quarter of nodes fp32-resident, the next quarter quantized int8
	// (the 0.25 split the re-planner's candidate set lands on for this
	// platform), the cold tail reading from host memory.
	freq := make([]int64, nodes)
	for v := range freq {
		freq[v] = int64(g.Degree(graph.NodeID(v)))
	}
	hot, warm := cache.SelectTiered(cache.SelectConfig{
		Policy: cache.PolicyHotGlobal, Freq: freq, Graph: g,
		CapacityNodes: nodes / 4, Devices: devices,
	}, nodes/4)
	for d := range hot {
		store.ConfigureCacheTiered(d, hot[d], warm[d])
	}
	eng, err := engine.New(engine.Config{
		Platform:  p,
		Graph:     g,
		Store:     store,
		NewModel:  func() *nn.Model { return nn.NewGraphSAGE(dim, 32, classes, 2) },
		Labels:    labels,
		Seeds:     seeds,
		Sampling:  sample.Config{Fanouts: []int{10, 10}},
		BatchSize: 64,
		Kind:      strategy.GDP,
		Mode:      engine.Real,
		Seed:      7,
		Pipeline:  pipeline,
	})
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

func BenchmarkEpochSequential(b *testing.B) {
	eng := benchEpochEngine(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.RunEpoch()
	}
}

func BenchmarkEpochPipelined(b *testing.B) {
	eng := benchEpochEngine(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.RunEpoch()
	}
}

func BenchmarkMultilevelPartition(b *testing.B) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 30000, AvgDegree: 12, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = partition.Multilevel(g, 8, partition.MultilevelConfig{Seed: uint64(i), EdgeBalanced: true})
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	spec, err := dataset.ByAbbr("PS", 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dataset.Build(spec, false)
	}
}

func BenchmarkExtensionPhaseDiagram(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionPhaseDiagram)
}

func BenchmarkExtensionFullGraph(b *testing.B) {
	runExperiment(b, (*experiments.Env).ExtensionFullGraph)
}
