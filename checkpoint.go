package repro

// Checkpoint/restore surface of the facade (package
// internal/checkpoint). A Snapshot is the versioned, self-describing
// capture of full training state — parameters, optimizer moments, RNG
// cursors, epoch counter, cache frequencies, and the active plan —
// written atomically and verified section-by-section with CRCs.
//
// Produce one with APT.Checkpoint / APT.CheckpointFile (or
// continuously with WithCheckpointDir), and come back with Resume:
//
//	apt, _ := repro.NewAPT(task, repro.WithCheckpointDir(dir))
//	apt.Train(10)                                  // dies at epoch 6
//	apt, _ = repro.ResumeFile(task, dir+"/snapshot.aptc")
//	apt.Train(10)                                  // runs epochs 7-10,
//	                                               // bit-identical
//
// Resuming onto a different device count is elastic: parameters and
// optimizer state carry over, and APT re-plans for the new topology.

import (
	"io"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// Snapshot is a versioned capture of full training state; see
// APT.Checkpoint and Resume.
type Snapshot = checkpoint.Snapshot

// SnapshotName is the file name WithCheckpointDir writes inside the
// checkpoint directory.
const SnapshotName = checkpoint.DefaultName

// LatestSnapshot returns the newest snapshot file in a checkpoint
// directory: the highest-epoch stamped file under WithCheckpointRetain,
// or the rolling SnapshotName without it.
var LatestSnapshot = checkpoint.LatestSnapshot

// ReadSnapshot decodes a snapshot from a stream, verifying framing
// and CRCs; the typed errors are in internal/checkpoint.
var ReadSnapshot = checkpoint.Read

// ReadSnapshotFile is ReadSnapshot from a file.
var ReadSnapshotFile = checkpoint.ReadFile

// LoadModelInto restores model parameters from a checkpoint file of
// either accepted format: a full training snapshot or a raw parameter
// file (Model.SaveFile).
var LoadModelInto = checkpoint.LoadModelInto

// Resume reconstructs an APT from a snapshot stream; task must be the
// same experiment the snapshot came from. Train's epoch argument
// counts TOTAL epochs, so the resumed run finishes the original
// target. See core.Resume for the topology-match rules.
func Resume(task Task, r io.Reader, opts ...Option) (*APT, error) {
	a, err := core.Resume(task, r, obsOf(opts)...)
	if err != nil {
		return nil, err
	}
	applyAPT(a, opts)
	return a, nil
}

// ResumeFile is Resume from a snapshot file.
func ResumeFile(task Task, path string, opts ...Option) (*APT, error) {
	a, err := core.ResumeFile(task, path, obsOf(opts)...)
	if err != nil {
		return nil, err
	}
	applyAPT(a, opts)
	return a, nil
}
