package repro

// Observability surface of the facade (package internal/obs): one
// subsystem shared by training and serving. Spans record what each
// simulated device did and when; the metrics registry holds counters,
// gauges, and histograms with a Prometheus-style text exposition; the
// Chrome trace exporter renders span tracks for chrome://tracing.
//
// Attach observers with functional options at construction time:
//
//	apt, _ := repro.NewAPT(task, repro.WithTracePath("train.json"))
//	srv, _ := repro.Serve(cfg, repro.WithObserver(myObserver))

import "repro/internal/obs"

type (
	// Observer receives the collected span tracks and the metrics
	// registry when a run flushes (training finishes, server closes).
	Observer = obs.Observer
	// Span is one timed operation on a simulated device's track.
	Span = obs.Span
	// SpanTrack is one device's (or sampler's, or comm link's)
	// time-ordered span sequence.
	SpanTrack = obs.Track
	// SpanCollector aggregates the tracks of one run.
	SpanCollector = obs.Collector
	// MetricsRegistry is the named counter/gauge/histogram registry.
	MetricsRegistry = obs.Registry
)

// WriteChromeTrace renders a span collector as Chrome trace-event
// JSON to a writer. (WithObserver and WithTracePath, the options that
// attach observers, live in options.go with the rest of the Option
// constructors.)
var WriteChromeTrace = obs.WriteChromeTrace
