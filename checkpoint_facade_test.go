package repro_test

import (
	"path/filepath"
	"testing"

	"repro"
)

// TestFacadeCheckpointLifecycle drives describe → plan → train →
// snapshot → resume → serve → hot-swap entirely through the public
// facade: a run checkpointing every epoch is killed at its target,
// resumed to a larger target from the rolling snapshot, and the
// resulting snapshot is then hot-loaded into a live server.
func TestFacadeCheckpointLifecycle(t *testing.T) {
	spec := repro.DatasetPresets(0.04)[1]
	spec.Classes = 8
	spec.HomophilyDegree = 6
	ds := repro.BuildDataset(spec, true)
	newModel := func() *repro.Model {
		return repro.NewGraphSAGE(spec.FeatDim, 16, spec.Classes, 2)
	}
	task := repro.Task{
		Graph:        ds.Graph,
		Feats:        ds.Feats,
		Labels:       ds.Labels,
		FeatDim:      spec.FeatDim,
		Seeds:        ds.TrainSeeds,
		NewModel:     newModel,
		NewOptimizer: func() repro.Optimizer { return repro.NewAdam(0.02) },
		Sampling:     repro.SamplingConfig{Fanouts: []int{8, 8}},
		BatchSize:    64,
		Platform:     repro.WithDevices(repro.SingleMachine8GPU(), 1, 2),
		CacheBytes:   ds.CacheBytesFraction(0.08),
		Seed:         5,
	}

	dir := t.TempDir()
	snapPath := filepath.Join(dir, repro.SnapshotName)

	apt, err := repro.NewAPT(task, repro.WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apt.Train(2); err != nil {
		t.Fatal(err)
	}
	snap, err := repro.ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("rolling snapshot unreadable: %v", err)
	}
	if snap.EpochsDone != 2 {
		t.Fatalf("snapshot at epoch %d, want 2", snap.EpochsDone)
	}

	// Resume towards a larger total; Train counts TOTAL epochs.
	apt, err = repro.ResumeFile(task, snapPath, repro.WithCheckpointDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	res, err := apt.Train(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("resumed run trained %d epochs, want 2 more", len(res.Epochs))
	}

	// Serve a fresh model, then hot-swap the trained snapshot in.
	srv, err := repro.Serve(repro.ServeConfig{
		Graph: ds.Graph, Feats: ds.Feats, Model: newModel(),
		Sampling: task.Sampling, Platform: task.Platform,
		MaxBatch: 16, CacheBytes: task.CacheBytes, Seed: 9,
		NewModel: newModel,
	}, repro.WithReload(snapPath))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.ReloadCheckpoint(); err != nil {
		t.Fatalf("hot-swap from snapshot: %v", err)
	}
	if srv.ModelVersion() != 1 {
		t.Fatalf("model version %d after hot-swap", srv.ModelVersion())
	}
	if _, err := srv.Predict([]repro.NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}

	// Retention through the facade: switch the directory to stamped
	// snapshots kept at depth 1, resume from the newest.
	rdir := t.TempDir()
	apt, err = repro.NewAPT(task, repro.WithCheckpointDir(rdir), repro.WithCheckpointRetain(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apt.Train(2); err != nil {
		t.Fatal(err)
	}
	latest, err := repro.LatestSnapshot(rdir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) == repro.SnapshotName {
		t.Fatalf("retention wrote the rolling name %s, want an epoch-stamped file", latest)
	}
	apt, err = repro.ResumeFile(task, latest)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := apt.Train(3); err != nil || len(res.Epochs) != 1 {
		t.Fatalf("resume from stamped snapshot: epochs=%d err=%v", len(res.Epochs), err)
	}
}
