package repro

// Public facade: the user-facing API of APT-Go, re-exported from the
// internal packages so downstream modules can import module path
// "repro" directly (Go's internal/ rule restricts import paths, not
// type identity). The facade mirrors how a user of the paper's system
// interacts with it: describe a task, let APT plan, train.
//
//	task := repro.Task{ Graph: g, NewModel: ..., Platform: repro.SingleMachine8GPU(), ... }
//	apt, err := repro.NewAPT(task)
//	result, err := apt.Train(10)

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/fullgraph"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/serve"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// Core system types.
type (
	// Task specifies a GNN training job (graph, model, sampling,
	// platform); see core.Task for field documentation.
	Task = core.Task
	// APT is the adaptive parallel training system.
	APT = core.APT
	// Result summarizes a Train run.
	Result = core.Result
	// Estimate is one strategy's predicted epoch cost.
	Estimate = core.Estimate
	// CostModel converts dry-run volumes into time estimates.
	CostModel = core.CostModel
)

// Strategy identifiers.
type Strategy = strategy.Kind

// The parallelization strategies.
const (
	GDP    = strategy.GDP
	NFP    = strategy.NFP
	SNP    = strategy.SNP
	DNP    = strategy.DNP
	Hybrid = strategy.Hybrid
)

// Full-graph trainer modes.
const (
	FullGraphReal       = fullgraph.Real
	FullGraphAccounting = fullgraph.Accounting
)

// Data types.
type (
	// Graph is a CSR graph; NodeID indexes its nodes.
	Graph  = graph.Graph
	NodeID = graph.NodeID
	// Matrix is a dense float32 matrix (features, embeddings).
	Matrix = tensor.Matrix
	// Model is a GNN model; Layer one of its layers.
	Model = nn.Model
	// Platform describes a simulated training cluster.
	Platform = hardware.Platform
	// Partitioning assigns nodes to devices.
	Partitioning = partition.Partitioning
	// SamplingConfig selects the graph-sampling algorithm.
	SamplingConfig = sample.Config
	// EpochStats is one epoch's time decomposition and volumes.
	EpochStats = engine.EpochStats
	// Dataset is a materialized synthetic dataset preset.
	Dataset = dataset.Dataset
	// DatasetSpec describes a synthetic dataset.
	DatasetSpec = dataset.Spec
	// FullGraphConfig configures the full-graph training baseline.
	FullGraphConfig = fullgraph.Config
	// PartitionConfig tunes the multilevel partitioner.
	PartitionConfig = partition.MultilevelConfig
	// CachePolicy selects a feature-cache rule.
	CachePolicy = cache.Policy
	// Optimizer updates model parameters.
	Optimizer = nn.Optimizer
)

// Online inference serving (package internal/serve): a Server answers
// Predict requests over a trained model with adaptive micro-batching.
type (
	// Server is the online inference server; issue requests with
	// Server.Predict and stop with Server.Close.
	Server = serve.Server
	// ServeConfig configures Serve.
	ServeConfig = serve.Config
	// PredictResult is one node's prediction.
	PredictResult = serve.Result
	// ServeStats is a snapshot of a Server's metrics registry
	// (latency percentiles, throughput, batch sizes, cache hit rate).
	ServeStats = serve.Snapshot
)

// ErrServerClosed is returned by Server.Predict after Server.Close.
var ErrServerClosed = serve.ErrServerClosed

// Constructors and entry points.
var (
	// NewAPT validates a task and creates the system.
	NewAPT = core.New
	// NewGraphSAGE and NewGAT build the paper's evaluation models.
	NewGraphSAGE = nn.NewGraphSAGE
	NewGAT       = nn.NewGAT
	// NewSGD and NewAdam build optimizers.
	NewSGD  = nn.NewSGD
	NewAdam = nn.NewAdam
	// SingleMachine8GPU and FourMachines4GPU are the paper's platforms.
	SingleMachine8GPU = hardware.SingleMachine8GPU
	FourMachines4GPU  = hardware.FourMachines4GPU
	// WithDevices adjusts a platform's topology.
	WithDevices = hardware.WithDevices
	// MultilevelPartition is the METIS-style partitioner.
	MultilevelPartition = partition.Multilevel
	// BuildDataset materializes a synthetic dataset preset.
	BuildDataset = dataset.Build
	// DatasetPresets lists the paper's three evaluation datasets.
	DatasetPresets = dataset.Presets
	// ReadEdgeList parses a SNAP-style text edge list.
	ReadEdgeList = graph.ReadEdgeList
	// Evaluate computes test accuracy of a trained model.
	Evaluate = engine.Evaluate
	// DescribePlan renders a strategy's adapted execution plan.
	DescribePlan = engine.DescribePlan
	// NewFullGraphTrainer builds the full-graph training baseline.
	NewFullGraphTrainer = fullgraph.New
	// Serve starts an online inference server over a trained model.
	Serve = serve.New
)
