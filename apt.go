package repro

// Public facade: the user-facing API of APT-Go, re-exported from the
// internal packages so downstream modules can import module path
// "repro" directly (Go's internal/ rule restricts import paths, not
// type identity). The surface is structured by concern:
//
//	apt.go        — the core system: tasks, planning, training
//	data.go       — graphs, datasets, platforms, partitioning
//	checkpoint.go — snapshots: checkpoint, resume, crash recovery
//	serving.go    — online inference serving, model hot-swap
//	observe.go    — observability: spans, metrics, Chrome traces
//	options.go    — the shared functional Option type
//
// The facade mirrors the lifecycle of a training job under the
// paper's system: describe a task, let APT plan, train, snapshot,
// serve — and, because the snapshot is the whole training state,
// resume any of it after a crash or onto different hardware.
//
//	task := repro.Task{ Graph: g, NewModel: ..., Platform: repro.SingleMachine8GPU(), ... }
//	apt, err := repro.NewAPT(task, repro.WithCheckpointDir(dir))
//	result, err := apt.Train(10)   // rolling snapshot every epoch
//	srv, err := repro.Serve(cfg, repro.WithReload(dir+"/"+repro.SnapshotName))

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fullgraph"
	"repro/internal/nn"
	"repro/internal/strategy"
)

// Core system types.
type (
	// Task specifies a GNN training job (graph, model, sampling,
	// platform); see core.Task for field documentation.
	Task = core.Task
	// APT is the adaptive parallel training system.
	APT = core.APT
	// Result summarizes a Train run.
	Result = core.Result
	// Estimate is one strategy's predicted epoch cost.
	Estimate = core.Estimate
	// CostModel converts dry-run volumes into time estimates.
	CostModel = core.CostModel
	// EpochStats is one epoch's time decomposition and volumes.
	EpochStats = engine.EpochStats
	// Model is a GNN model.
	Model = nn.Model
	// Optimizer updates model parameters.
	Optimizer = nn.Optimizer
	// FullGraphConfig configures the full-graph training baseline.
	FullGraphConfig = fullgraph.Config
)

// Strategy identifies a parallelization strategy; its String method
// and ParseStrategy round-trip the canonical names.
type Strategy = strategy.Kind

// The parallelization strategies.
const (
	GDP    = strategy.GDP
	NFP    = strategy.NFP
	SNP    = strategy.SNP
	DNP    = strategy.DNP
	Hybrid = strategy.Hybrid
)

// CoreStrategies lists the four strategies APT's planner selects
// among.
var CoreStrategies = strategy.Core

// ParseStrategy converts a strategy name ("GDP", "dnp", ...) to its
// Strategy; the inverse of Strategy.String.
var ParseStrategy = strategy.Parse

// Full-graph trainer modes.
const (
	FullGraphReal       = fullgraph.Real
	FullGraphAccounting = fullgraph.Accounting
)

// NewAPT validates a task and creates the system. Options attach
// observers (WithObserver, WithTracePath) and configure rolling
// checkpoints (WithCheckpointDir, WithCheckpointEvery).
func NewAPT(task Task, opts ...Option) (*APT, error) {
	a, err := core.New(task, obsOf(opts)...)
	if err != nil {
		return nil, err
	}
	applyAPT(a, opts)
	return a, nil
}

// Constructors and entry points of the core system.
var (
	// NewGraphSAGE and NewGAT build the paper's evaluation models.
	NewGraphSAGE = nn.NewGraphSAGE
	NewGAT       = nn.NewGAT
	// NewSGD and NewAdam build optimizers.
	NewSGD  = nn.NewSGD
	NewAdam = nn.NewAdam
	// Evaluate computes test accuracy of a trained model.
	Evaluate = engine.Evaluate
	// DescribePlan renders a strategy's adapted execution plan.
	DescribePlan = engine.DescribePlan
	// NewFullGraphTrainer builds the full-graph training baseline.
	NewFullGraphTrainer = fullgraph.New
)
