// Command aptlint runs the repo's static-analysis suite (simclock,
// detrange, hotalloc, poolpair, directive — see DESIGN.md decision 14)
// over the whole module and exits non-zero on any unsuppressed finding.
//
// Usage:
//
//	aptlint [-C dir] [-v] [-audit]
//
// aptlint always analyzes the full module rooted at dir (default: the
// nearest go.mod at or above the working directory) — the invariants it
// enforces are module-wide, so there is no package filter to narrow a
// run below the gate `make verify` applies.
//
// With -audit, instead of reporting findings it lists every
// //apt:allow suppression with its justification and whether the
// finding it excuses still fires, exiting non-zero if any directive
// has gone stale (run by `make verify` so suppressions cannot outlive
// their cause unnoticed).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/aptlint"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to analyze (the nearest go.mod at or above it is the root)")
	verbose := flag.Bool("v", false, "also list suppressed findings with their //apt:allow reasons")
	audit := flag.Bool("audit", false, "list every //apt:allow with its status and fail on stale directives")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptlint:", err)
		os.Exit(2)
	}
	if *audit {
		os.Exit(aptlint.Audit(os.Stdout, root))
	}
	os.Exit(aptlint.Main(os.Stdout, root, *verbose))
}

func findModuleRoot(start string) (string, error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above %s", start)
		}
		dir = parent
	}
}
