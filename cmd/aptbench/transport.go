package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// transportBenchWorld is the rank count for the transport comparison.
// Two ranks keep the loopback run cheap while still crossing a real
// socket for every collective.
const transportBenchWorld = 2

// transportResult is one strategy's channel-vs-TCP measurement.
type transportResult struct {
	ChannelEpochSec float64 `json:"channel_epoch_sec"`
	TCPEpochSec     float64 `json:"tcp_epoch_sec"`
	TCPOverChannel  float64 `json:"tcp_over_channel"`
}

// transportBench measures wall-clock epoch time of real-mode training
// under the in-process channel transport against the same job split
// into TCP-loopback rank processes (modeled as goroutines, each with
// its own APT instance, sharing only sockets). Engine construction and
// planning are excluded from the timing; training is bit-identical
// across the two transports, so the column isolates pure wire
// overhead. Results go to stdout and BENCH_transport.json.
func transportBench(scale float64, epochs, batch int, jsonPath string) (string, error) {
	if epochs < 1 {
		epochs = 1
	}
	mkTask := func() core.Task {
		spec, err := dataset.ByAbbr("PS", scale)
		if err != nil {
			panic(err)
		}
		spec.HomophilyDegree = 6
		ds := dataset.Build(spec, true)
		return core.Task{
			Graph:   ds.Graph,
			Feats:   ds.Feats,
			Labels:  ds.Labels,
			FeatDim: spec.FeatDim,
			Seeds:   ds.TrainSeeds,
			NewModel: func() *nn.Model {
				return nn.NewGraphSAGE(spec.FeatDim, 32, spec.Classes, 2)
			},
			Sampling:   sample.Config{Fanouts: []int{10, 10}},
			BatchSize:  batch,
			Platform:   hardware.WithDevices(hardware.SingleMachine8GPU(), 1, transportBenchWorld),
			CacheBytes: ds.CacheBytesFraction(0.08),
			Seed:       7,
		}
	}

	kinds := []strategy.Kind{strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP}
	results := make(map[string]transportResult, len(kinds))
	var b strings.Builder
	fmt.Fprintf(&b, "Transport overhead: wall epoch time, channel vs TCP loopback (world=%d, %d epoch(s))\n",
		transportBenchWorld, epochs)
	fmt.Fprintf(&b, "%-6s  %14s  %14s  %8s\n", "", "channel s/ep", "tcp s/ep", "tcp/ch")

	for _, k := range kinds {
		chSec, err := channelEpochSec(mkTask(), k, epochs)
		if err != nil {
			return "", fmt.Errorf("%v channel: %w", k, err)
		}
		tcpSec, err := tcpEpochSec(mkTask, k, epochs)
		if err != nil {
			return "", fmt.Errorf("%v tcp: %w", k, err)
		}
		r := transportResult{ChannelEpochSec: chSec, TCPEpochSec: tcpSec, TCPOverChannel: tcpSec / chSec}
		results[k.String()] = r
		fmt.Fprintf(&b, "%-6v  %14.4f  %14.4f  %8.2f\n", k, r.ChannelEpochSec, r.TCPEpochSec, r.TCPOverChannel)
	}

	blob, err := json.MarshalIndent(struct {
		GeneratedBy string                     `json:"generated_by"`
		World       int                        `json:"world"`
		Epochs      int                        `json:"epochs"`
		Strategies  map[string]transportResult `json:"strategies"`
	}{"make bench-transport", transportBenchWorld, epochs, results}, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "results written to %s\n", jsonPath)
	return b.String(), nil
}

//apt:allow simclock this benchmark's measurand IS wall-clock epoch time
func channelEpochSec(task core.Task, k strategy.Kind, epochs int) (float64, error) {
	apt, err := core.New(task)
	if err != nil {
		return 0, err
	}
	e, err := apt.BuildEngine(k)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for ep := 0; ep < epochs; ep++ {
		e.RunEpoch()
	}
	return time.Since(start).Seconds() / float64(epochs), nil
}

//apt:allow simclock this benchmark's measurand IS wall-clock epoch time
func tcpEpochSec(mkTask func() core.Task, k strategy.Kind, epochs int) (float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	const world = transportBenchWorld
	trs := make([]*transport.TCP, world)
	engines := make([]*engine.Engine, world)
	errs := make([]error, world)
	// Build phase: bootstrap the mesh and construct every rank's engine
	// before the clock starts, as a launcher would.
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := transport.TCPOptions{Rank: r, World: world, Coord: ln.Addr().String()}
			if r == 0 {
				opts.CoordListener = ln
			}
			tr, err := transport.NewTCP(opts)
			if err != nil {
				errs[r] = err
				return
			}
			trs[r] = tr
			apt, err := core.New(mkTask())
			if err != nil {
				errs[r] = err
				return
			}
			engines[r], errs[r] = apt.BuildEngineDistributed(k, tr, r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for ep := 0; ep < epochs; ep++ {
				engines[r].RunEpoch()
			}
		}(r)
	}
	wg.Wait()
	sec := time.Since(start).Seconds() / float64(epochs)
	for r := 0; r < world; r++ {
		if err := trs[r].Close(); err != nil {
			return 0, err
		}
	}
	return sec, nil
}
