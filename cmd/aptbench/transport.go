package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// transportBenchWorld is the rank count for the transport comparison.
// Two ranks keep the loopback run cheap while still crossing a real
// socket for every collective.
const transportBenchWorld = 2

// transportResult is one strategy's channel-vs-TCP measurement.
type transportResult struct {
	ChannelEpochSec float64 `json:"channel_epoch_sec"`
	TCPEpochSec     float64 `json:"tcp_epoch_sec"`
	TCPOverChannel  float64 `json:"tcp_over_channel"`
}

// Allreduce microbenchmark shape: one op reduces arElems float32
// (4 MiB) — large enough that serialization and copy dominate per-op
// fixed costs, small enough that the naive full-mesh cannot hide its
// 2x wire volume behind loopback's parallel per-peer connections.
// Each series is the fastest of arRepeats blocks of arIters lockstep
// ops (min-of-N is the stable estimator for a shared, occasionally-
// preempted machine; the mean would fold scheduler noise into the
// regression gate).
const (
	arElems   = 1 << 20
	arIters   = 8
	arRepeats = 5
)

// arSeries is one (world, backend, algo, codec) allreduce measurement.
type arSeries struct {
	World    int     `json:"world"`
	Backend  string  `json:"backend"` // "channel" or "tcp"
	Algo     string  `json:"algo"`    // "naive" or "ring"
	Codec    string  `json:"codec"`   // "fp32", "fp16", "int8"
	SecPerOp float64 `json:"sec_per_op"`
}

func (s arSeries) key() string {
	return fmt.Sprintf("w%d/%s/%s/%s", s.World, s.Backend, s.Algo, s.Codec)
}

// transportReport is the BENCH_transport.json schema.
type transportReport struct {
	GeneratedBy string                     `json:"generated_by"`
	World       int                        `json:"world"`
	Epochs      int                        `json:"epochs"`
	Strategies  map[string]transportResult `json:"strategies"`
	// AllReduce is the raw-collective series: naive vs ring × codec at
	// worlds 2 and 4 over both backends.
	AllReduce []arSeries `json:"allreduce"`
	// RingReductionWorld4TCP is 1 - ring/naive fp32 wall time at world 4
	// over TCP — the headline win of the chunked ring data plane (it
	// moves 1.5·V per rank where the naive full-mesh gather moves 3·V).
	RingReductionWorld4TCP float64 `json:"ring_reduction_world4_tcp"`
}

// transportBench measures wall-clock epoch time of real-mode training
// under the in-process channel transport against the same job split
// into TCP-loopback rank processes (modeled as goroutines, each with
// its own APT instance, sharing only sockets). Engine construction and
// planning are excluded from the timing; training is bit-identical
// across the two transports, so the column isolates pure wire
// overhead. It then measures the raw allreduce series (naive vs ring ×
// wire codec at worlds 2 and 4). Results go to stdout and
// BENCH_transport.json.
func transportBench(scale float64, epochs, batch int, jsonPath string) (string, error) {
	if epochs < 1 {
		epochs = 1
	}
	mkTask := func() core.Task {
		spec, err := dataset.ByAbbr("PS", scale)
		if err != nil {
			panic(err)
		}
		spec.HomophilyDegree = 6
		ds := dataset.Build(spec, true)
		return core.Task{
			Graph:   ds.Graph,
			Feats:   ds.Feats,
			Labels:  ds.Labels,
			FeatDim: spec.FeatDim,
			Seeds:   ds.TrainSeeds,
			NewModel: func() *nn.Model {
				return nn.NewGraphSAGE(spec.FeatDim, 32, spec.Classes, 2)
			},
			Sampling:   sample.Config{Fanouts: []int{10, 10}},
			BatchSize:  batch,
			Platform:   hardware.WithDevices(hardware.SingleMachine8GPU(), 1, transportBenchWorld),
			CacheBytes: ds.CacheBytesFraction(0.08),
			Seed:       7,
		}
	}

	kinds := []strategy.Kind{strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP}
	results := make(map[string]transportResult, len(kinds))
	var b strings.Builder
	fmt.Fprintf(&b, "Transport overhead: wall epoch time, channel vs TCP loopback (world=%d, %d epoch(s))\n",
		transportBenchWorld, epochs)
	fmt.Fprintf(&b, "%-6s  %14s  %14s  %8s\n", "", "channel s/ep", "tcp s/ep", "tcp/ch")

	for _, k := range kinds {
		chSec, err := channelEpochSec(mkTask(), k, epochs)
		if err != nil {
			return "", fmt.Errorf("%v channel: %w", k, err)
		}
		tcpSec, err := tcpEpochSec(mkTask, k, epochs)
		if err != nil {
			return "", fmt.Errorf("%v tcp: %w", k, err)
		}
		r := transportResult{ChannelEpochSec: chSec, TCPEpochSec: tcpSec, TCPOverChannel: tcpSec / chSec}
		results[k.String()] = r
		fmt.Fprintf(&b, "%-6v  %14.4f  %14.4f  %8.2f\n", k, r.ChannelEpochSec, r.TCPEpochSec, r.TCPOverChannel)
	}

	series, err := allReduceBench()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nAllReduce: wall s/op, %d f32 elems (naive vs ring, per wire codec)\n", arElems)
	fmt.Fprintf(&b, "%-28s  %12s\n", "", "s/op")
	for _, s := range series {
		fmt.Fprintf(&b, "%-28s  %12.5f\n", s.key(), s.SecPerOp)
	}
	red := ringReduction(series)
	fmt.Fprintf(&b, "ring vs naive reduction, world 4 over TCP: %.0f%%\n", 100*red)

	blob, err := json.MarshalIndent(transportReport{
		GeneratedBy: "make bench-transport",
		World:       transportBenchWorld,
		Epochs:      epochs,
		Strategies:  results,
		AllReduce:   series,

		RingReductionWorld4TCP: red,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "results written to %s\n", jsonPath)
	return b.String(), nil
}

// ringReduction extracts 1 - ring/naive (fp32, world 4, TCP).
func ringReduction(series []arSeries) float64 {
	var naive, ring float64
	for _, s := range series {
		if s.World == 4 && s.Backend == "tcp" && s.Codec == "fp32" {
			switch s.Algo {
			case "naive":
				naive = s.SecPerOp
			case "ring":
				ring = s.SecPerOp
			}
		}
	}
	if naive <= 0 {
		return 0
	}
	return 1 - ring/naive
}

// transportCheck re-runs the allreduce series and gates against the
// committed BENCH_transport.json. Two gates: the within-run
// ring-vs-naive reduction at world 4 over TCP (machine-speed
// independent, so it gets a tight bar), and a gross-regression
// tripwire on each ring series' absolute sec_per_op. The tripwire's
// tolerance is wide (+50%) because concurrent socket benchmarks swing
// 10-30% between container invocations — it exists to catch structural
// regressions (an accidental extra volume, a dead codec), not to
// relitigate scheduler noise; the 10%-tight gating lives in the kernel
// series, which is single-threaded and stable. The training columns
// are not re-gated here (they are an order of magnitude slower to
// reproduce).
func transportCheck(jsonPath string) (string, error) {
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		return "", fmt.Errorf("no recorded baseline (run make bench-transport first): %w", err)
	}
	var rec transportReport
	if err := json.Unmarshal(blob, &rec); err != nil {
		return "", err
	}
	recorded := make(map[string]float64, len(rec.AllReduce))
	for _, s := range rec.AllReduce {
		recorded[s.key()] = s.SecPerOp
	}
	series, err := allReduceBench()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Transport check against %s (tripwire tolerance +50%%)\n", jsonPath)
	bad := false
	for _, s := range series {
		want, ok := recorded[s.key()]
		verdict := "ok"
		switch {
		case s.Algo == "naive":
			// The naive algorithm is only the comparison foil; its
			// absolute time is not a product path and is not gated.
			verdict = "foil (not gated)"
		case !ok:
			verdict = "new (no baseline)"
		case s.SecPerOp > want*1.50:
			verdict = fmt.Sprintf("FAIL (+%.0f%% over %.5f)", 100*(s.SecPerOp/want-1), want)
			bad = true
		}
		fmt.Fprintf(&b, "%-28s  %12.5f  %s\n", s.key(), s.SecPerOp, verdict)
	}
	// The recorded baseline holds the ring at >= 40% under the naive
	// full-mesh; live runs of the same series swing roughly 33-51% with
	// container load, so the gate sits at 30% — low enough not to
	// relitigate noise, high enough that losing the ring win outright
	// (a structural regression pushes this toward 0) still trips it.
	if red := ringReduction(series); red < 0.30 {
		fmt.Fprintf(&b, "FAIL: ring reduction at world 4 over TCP is %.1f%%, want >= 30%%\n", 100*red)
		bad = true
	} else {
		fmt.Fprintf(&b, "ring vs naive reduction, world 4 over TCP: %.1f%%\n", 100*red)
	}
	if bad {
		return b.String(), fmt.Errorf("transport benchmark regressed")
	}
	return b.String(), nil
}

// allReduceBench runs the raw-collective series: worlds 2 and 4, both
// backends, naive fp32 plus the ring under every wire codec.
func allReduceBench() ([]arSeries, error) {
	type cfg struct{ algo, codec string }
	cfgs := []cfg{{"naive", "fp32"}, {"ring", "fp32"}, {"ring", "fp16"}, {"ring", "int8"}}
	var out []arSeries
	for _, world := range []int{2, 4} {
		for _, backend := range []string{"channel", "tcp"} {
			for _, c := range cfgs {
				sec, err := allReduceSecPerOp(world, backend, c.algo, c.codec)
				if err != nil {
					return nil, fmt.Errorf("allreduce w%d/%s/%s/%s: %w", world, backend, c.algo, c.codec, err)
				}
				out = append(out, arSeries{World: world, Backend: backend, Algo: c.algo, Codec: c.codec, SecPerOp: sec})
			}
		}
	}
	return out, nil
}

// allReduceSecPerOp times one configuration. Every rank loops
// AllReduceCodec over its own arElems-value matrix; the clock covers
// all ranks completing arIters lockstep ops (one untimed warmup op
// absorbs connection and pool cold starts).
//
//apt:allow simclock this benchmark's measurand IS wall-clock collective time
func allReduceSecPerOp(world int, backend, algo, codecName string) (float64, error) {
	codec, err := transport.ChunkCodecByName(codecName)
	if err != nil {
		return 0, err
	}
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, world)

	comms := make([]*comm.Comm, world)
	var trs []*transport.TCP
	switch backend {
	case "channel":
		c := comm.New(device.NewGroup(p))
		if algo == "naive" {
			c.Algo = comm.AlgoNaive
		}
		for r := range comms {
			comms[r] = c
		}
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		trs = make([]*transport.TCP, world)
		errs := make([]error, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				opts := transport.TCPOptions{Rank: r, World: world, Coord: ln.Addr().String()}
				if r == 0 {
					opts.CoordListener = ln
				}
				trs[r], errs[r] = transport.NewTCP(opts)
				if errs[r] == nil {
					comms[r] = comm.NewWithTransport(device.NewGroup(p), trs[r])
					if algo == "naive" {
						comms[r].Algo = comm.AlgoNaive
					}
				}
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("unknown backend %q", backend)
	}

	run := func(iters int) {
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				mat := tensor.Get(1, arElems)
				for i := range mat.Data {
					mat.Data[i] = float32(r+1) * float32(i%17)
				}
				for it := 0; it < iters; it++ {
					tensor.Put(comms[r].AllReduceCodec(r, "bench", mat, 0, codec))
				}
				tensor.Put(mat)
			}(r)
		}
		wg.Wait()
	}
	run(1) // warmup
	sec := 0.0
	for rep := 0; rep < arRepeats; rep++ {
		start := time.Now()
		run(arIters)
		if s := time.Since(start).Seconds() / arIters; rep == 0 || s < sec {
			sec = s
		}
	}
	for _, tr := range trs {
		if err := tr.Close(); err != nil {
			return 0, err
		}
	}
	return sec, nil
}

//apt:allow simclock this benchmark's measurand IS wall-clock epoch time
func channelEpochSec(task core.Task, k strategy.Kind, epochs int) (float64, error) {
	apt, err := core.New(task)
	if err != nil {
		return 0, err
	}
	e, err := apt.BuildEngine(k)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for ep := 0; ep < epochs; ep++ {
		e.RunEpoch()
	}
	return time.Since(start).Seconds() / float64(epochs), nil
}

//apt:allow simclock this benchmark's measurand IS wall-clock epoch time
func tcpEpochSec(mkTask func() core.Task, k strategy.Kind, epochs int) (float64, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	const world = transportBenchWorld
	trs := make([]*transport.TCP, world)
	engines := make([]*engine.Engine, world)
	errs := make([]error, world)
	// Build phase: bootstrap the mesh and construct every rank's engine
	// before the clock starts, as a launcher would.
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := transport.TCPOptions{Rank: r, World: world, Coord: ln.Addr().String()}
			if r == 0 {
				opts.CoordListener = ln
			}
			tr, err := transport.NewTCP(opts)
			if err != nil {
				errs[r] = err
				return
			}
			trs[r] = tr
			apt, err := core.New(mkTask())
			if err != nil {
				errs[r] = err
				return
			}
			engines[r], errs[r] = apt.BuildEngineDistributed(k, tr, r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for ep := 0; ep < epochs; ep++ {
				engines[r].RunEpoch()
			}
		}(r)
	}
	wg.Wait()
	sec := time.Since(start).Seconds() / float64(epochs)
	for r := 0; r < world; r++ {
		if err := trs[r].Close(); err != nil {
			return 0, err
		}
	}
	return sec, nil
}
