// Command aptbench regenerates the paper's evaluation tables and
// figures on the simulated platform. Each experiment prints a
// plain-text report (stacked epoch-time bars with APT's selection
// starred, or a measured-vs-paper table).
//
// Usage:
//
//	aptbench -exp fig8a            # one experiment
//	aptbench -exp all -scale 0.25  # everything, quickly
//
// Experiments: fig1 fig6 fig7 fig8a fig8b fig8c fig9 fig10 fig11
// fig12 tab1 tab3 tab4 ablation-fullcost ablation-dryrun
// ablation-cache ablation-pipeline ablation-replan ext-hybrid
// ext-nvlink all; plus transport (channel vs TCP-loopback wall epoch
// time, written to BENCH_transport.json — see make bench-transport)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see doc comment)")
		scale  = flag.Float64("scale", 0.5, "dataset scale multiplier (1.0 = full laptop scale)")
		devs   = flag.Int("devices", 8, "GPUs on the single-machine platform")
		epochs = flag.Int("epochs", 2, "measured epochs per configuration")
		batch  = flag.Int("batch", 64, "per-GPU mini-batch size")
		out    = flag.String("o", "", "also append reports to this file")
		trace  = flag.String("trace", "", "run a pipelined training pass and write its Chrome trace to this file")
		check  = flag.Bool("check", false, "with -exp transport: gate the allreduce series against the committed BENCH_transport.json instead of rewriting it")
	)
	flag.Parse()

	if *trace != "" {
		traceRun(*trace, *scale, *devs, *epochs, *batch)
		return
	}
	if *exp == "transport" {
		// Channel-vs-TCP wall time is its own path: it runs real
		// sockets and rank processes, not the simulated platform the
		// experiment env wraps.
		run := func() (string, error) { return transportBench(*scale, *epochs, *batch, "BENCH_transport.json") }
		if *check {
			run = func() (string, error) { return transportCheck("BENCH_transport.json") }
		}
		report, err := run()
		fmt.Print(report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aptbench transport:", err)
			os.Exit(1)
		}
		return
	}

	var outFile *os.File
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aptbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		outFile = f
	}

	env := experiments.NewEnv(experiments.Options{
		Scale:     *scale,
		Devices:   *devs,
		Epochs:    *epochs,
		BatchSize: *batch,
	})

	type runner struct {
		id string
		fn func() (string, error)
	}
	all := []runner{
		{"tab1", env.Table1},
		{"tab2", env.Table2},
		{"tab3", env.Table3},
		{"fig1", env.Figure1},
		{"fig6", env.Figure6},
		{"fig7", env.Figure7},
		{"fig8a", env.Figure8Hidden},
		{"fig8b", env.Figure8Fanout},
		{"fig8c", env.Figure8Cache},
		{"fig9", env.Figure9},
		{"fig10", env.Figure10},
		{"fig11", env.Figure11},
		{"fig12", env.Figure12},
		{"tab4", env.Table4},
		{"ablation-fullcost", env.AblationFullCost},
		{"ablation-dryrun", env.AblationDryRunEpochs},
		{"ablation-cache", env.AblationCachePolicy},
		{"ablation-pipeline", env.AblationPipelining},
		{"ablation-replan", env.AblationReplan},
		{"ext-hybrid", env.ExtensionHybrid},
		{"ext-nvlink", env.ExtensionNVLink},
		{"ext-cpucache", env.ExtensionCPUCache},
		{"ext-layerwise", env.ExtensionLayerWise},
		{"ext-fullgraph", env.ExtensionFullGraph},
		{"ext-phase", env.ExtensionPhaseDiagram},
	}

	run := func(r runner) {
		//apt:allow simclock CLI progress reporting; benchmark results themselves use the simulated clock
		start := time.Now()
		report, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "aptbench %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Print(report)
		//apt:allow simclock CLI progress reporting; benchmark results themselves use the simulated clock
		fmt.Printf("[%s completed in %.1fs wall]\n\n", r.id, time.Since(start).Seconds())
		if outFile != nil {
			fmt.Fprint(outFile, report)
			fmt.Fprintln(outFile)
		}
	}

	if *exp == "all" {
		for _, r := range all {
			run(r)
		}
		return
	}
	for _, r := range all {
		if r.id == *exp {
			run(r)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "aptbench: unknown experiment %q\n", *exp)
	os.Exit(2)
}

// traceRun captures one pipelined training run through the
// observability options: APT plans and trains with span collection on,
// the Chrome trace lands at path, and the run's metrics registry is
// dumped in the text exposition format.
func traceRun(path string, scale float64, devs, epochs, batch int) {
	spec, err := dataset.ByAbbr("FS", scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptbench:", err)
		os.Exit(1)
	}
	spec.HomophilyDegree = 6
	ds := dataset.Build(spec, false) // accounting mode: timing structure only
	task := core.Task{
		Graph:   ds.Graph,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, 32, spec.Classes, 2)
		},
		Sampling:   sample.Config{Fanouts: []int{10, 10}},
		BatchSize:  batch,
		Platform:   hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devs),
		CacheBytes: ds.CacheBytesFraction(0.08),
		Pipeline:   true,
		Seed:       7,
	}
	apt, err := core.New(task, obs.WithTracePath(path))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptbench:", err)
		os.Exit(1)
	}
	res, err := apt.Train(epochs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptbench:", err)
		os.Exit(1)
	}
	fmt.Printf("traced %d pipelined epoch(s) under %v on %d devices\n",
		len(res.Epochs), res.Choice, devs)
	fmt.Printf("chrome trace written to %s (load in chrome://tracing)\n\n", path)
	fmt.Print(apt.Metrics().Exposition())
}
