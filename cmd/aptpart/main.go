// Command aptpart partitions a graph for SNP/DNP training — the
// offline step the paper performs with DGL's partitioning tools on a
// cheap CPU machine. It builds (or loads) a graph, runs the requested
// partitioner, reports cut quality, and optionally saves the graph in
// the binary CSR format.
//
// Usage:
//
//	aptpart -data PS -parts 8                  # multilevel (METIS-like)
//	aptpart -data PS -parts 8 -algo random
//	aptpart -data FS -save fs.graph
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		data  = flag.String("data", "PS", "dataset preset: PS, FS, or IM")
		scale = flag.Float64("scale", 0.25, "dataset scale multiplier")
		load  = flag.String("load", "", "load a binary graph file instead of generating")
		list  = flag.String("loadlist", "", "load a text edge list (SNAP format) instead of generating")
		save  = flag.String("save", "", "save the graph to this file")
		parts = flag.Int("parts", 8, "number of partitions (GPUs)")
		algo  = flag.String("algo", "multilevel", "partitioner: multilevel, random, or range")
		seed  = flag.Uint64("seed", 7, "random seed")
	)
	flag.Parse()

	var g *graph.Graph
	if *list != "" {
		f, err := os.Open(*list)
		fatal(err)
		g, err = graph.ReadEdgeList(f, graph.EdgeListOptions{Undirected: true, DropSelfLoops: true})
		f.Close()
		fatal(err)
		fmt.Printf("loaded edge list %s: %d nodes, %d edges\n", *list, g.NumNodes(), g.NumEdges())
	} else if *load != "" {
		var err error
		g, err = graph.LoadFile(*load)
		fatal(err)
		fmt.Printf("loaded %s: %d nodes, %d edges\n", *load, g.NumNodes(), g.NumEdges())
	} else {
		spec, err := dataset.ByAbbr(*data, *scale)
		fatal(err)
		g = dataset.Build(spec, false).Graph
		fmt.Printf("generated %s: %d nodes, %d edges\n", spec.Name, g.NumNodes(), g.NumEdges())
	}
	st := graph.ComputeDegreeStats(g)
	fmt.Printf("degrees: mean %.1f, p99 %d, max %d, gini %.3f\n", st.Mean, st.P99, st.Max, st.GiniCoefficient)

	var p *partition.Partitioning
	switch *algo {
	case "multilevel":
		p = partition.Multilevel(g, *parts, partition.MultilevelConfig{Seed: *seed, EdgeBalanced: true})
	case "random":
		p = partition.Random(g, *parts, *seed)
	case "range":
		p = partition.Range(g, *parts)
	default:
		fatal(fmt.Errorf("unknown partitioner %q", *algo))
	}
	fatal(p.Validate(true))
	q := partition.Evaluate(g, p)
	fmt.Printf("%s into %d parts: edge cut %d (%.1f%% of edges), imbalance %.3f\n",
		*algo, *parts, q.EdgeCut, q.CutRatio*100, q.Imbalance)
	fmt.Printf("part sizes: %v\n", p.Sizes())

	if *save != "" {
		fatal(g.SaveFile(*save))
		fmt.Printf("graph saved to %s\n", *save)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptpart:", err)
		os.Exit(1)
	}
}
