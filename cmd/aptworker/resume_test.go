package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Process-level fault-tolerance smoke: build the real binary, run a
// 2-rank job to completion, run it again but crash both ranks after
// epoch 2, resume from the snapshot, and require the resumed job's
// parameter checksums to equal the uninterrupted run's — the whole
// crash-recovery path, across OS processes, bit-for-bit.

var checksumRe = regexp.MustCompile(`params fnv64a ([0-9a-f]{16})`)

// buildWorker compiles the aptworker binary once per test run.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aptworker")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a distinct loopback port for one job's rendezvous.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// runJob launches one rank per process with shared flags and returns
// each rank's combined output plus exit code.
func runJob(t *testing.T, bin string, world int, extra ...string) (outs []string, codes []int) {
	t.Helper()
	coord := freeAddr(t)
	outs = make([]string, world)
	codes = make([]int, world)
	shared := []string{
		"-world", fmt.Sprint(world), "-coord", coord,
		"-data", "PS", "-scale", "0.05", "-hidden", "8", "-fanout", "5",
		"-batch", "64", "-epochs", "4", "-strategy", "GDP",
	}
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			args := append([]string{"-rank", fmt.Sprint(r)}, shared...)
			args = append(args, extra...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			outs[r] = string(out)
			if ee, ok := err.(*exec.ExitError); ok {
				codes[r] = ee.ExitCode()
			} else if err != nil {
				codes[r] = -1
				outs[r] += "\nexec: " + err.Error()
			}
		}(r)
	}
	wg.Wait()
	return outs, codes
}

// checksums extracts the per-rank parameter checksum lines.
func checksums(t *testing.T, outs []string) []string {
	t.Helper()
	sums := make([]string, len(outs))
	for r, out := range outs {
		m := checksumRe.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("rank %d printed no checksum:\n%s", r, out)
		}
		sums[r] = m[1]
	}
	return sums
}

func TestCrashAndResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildWorker(t)
	dir := t.TempDir()

	// Uninterrupted baseline.
	outs, codes := runJob(t, bin, 2)
	for r, c := range codes {
		if c != 0 {
			t.Fatalf("baseline rank %d exited %d:\n%s", r, c, outs[r])
		}
	}
	want := checksums(t, outs)
	if want[0] != want[1] {
		t.Fatalf("baseline ranks disagree: %s vs %s", want[0], want[1])
	}

	// Same job, crashing both ranks after epoch 2. The collective
	// snapshot is a barrier, so both reach the simulated crash.
	outs, codes = runJob(t, bin, 2, "-ckpt-dir", dir, "-die-after", "2")
	for r, c := range codes {
		if c != 3 {
			t.Fatalf("crash-run rank %d exited %d, want 3:\n%s", r, c, outs[r])
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.aptc")); err != nil {
		t.Fatalf("crash run left no snapshot: %v", err)
	}

	// Relaunch with -resume: must finish the remaining epochs and land
	// on exactly the baseline parameters.
	outs, codes = runJob(t, bin, 2, "-ckpt-dir", dir, "-resume")
	for r, c := range codes {
		if c != 0 {
			t.Fatalf("resumed rank %d exited %d:\n%s", r, c, outs[r])
		}
		if !strings.Contains(outs[r], "resuming from") {
			t.Fatalf("rank %d did not take the resume path:\n%s", r, outs[r])
		}
	}
	got := checksums(t, outs)
	for r := range got {
		if got[r] != want[r] {
			t.Errorf("rank %d: resumed checksum %s != baseline %s", r, got[r], want[r])
		}
	}
}
