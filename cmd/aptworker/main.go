// Command aptworker runs ONE rank of a multi-process APT training job
// over the TCP transport (internal/transport). Every rank is launched
// with the identical task flags plus its own -rank; rank 0 binds the
// coordinator address and the others rendezvous against it — the
// torch.distributed tcp:// init pattern. The engine's determinism
// makes the job bit-identical to a single-process run, which every
// rank reports as an FNV-64a checksum over its trained parameters:
// a healthy job prints the same checksum on every rank.
//
// Usage (2 ranks on one machine):
//
//	aptworker -rank 0 -world 2 -coord 127.0.0.1:29500 &
//	aptworker -rank 1 -world 2 -coord 127.0.0.1:29500
//
// With -measure-wire each rank times the live collectives during
// startup and plans against the measured wire speeds (the WireStats
// cross-rank maximum keeps every rank's plan identical); otherwise
// planning uses the simulated hardware profile.
//
// Fault tolerance: with -ckpt-dir, rank 0 writes a rolling training
// snapshot after every epoch. If the job dies, relaunching every rank
// with the same flags plus -resume continues from the last snapshot —
// bit-identically when the world size is unchanged (the checksums
// match an uninterrupted run), or elastically onto a different world
// size (parameters and optimizer state carry over, the plan is
// recomputed). -die-after n crashes the rank after epoch n to
// exercise this path. -epochs counts TOTAL epochs: a job resumed at
// epoch 2 with -epochs 5 trains 3 more.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/transport"
)

func main() {
	var (
		rank        = flag.Int("rank", -1, "this process's rank in [0, world)")
		world       = flag.Int("world", 2, "number of rank processes (= devices)")
		coord       = flag.String("coord", "127.0.0.1:29500", "coordinator rendezvous address (rank 0 binds it)")
		bind        = flag.String("bind", "", "host for this rank's data listener (default 127.0.0.1; set for multi-machine)")
		data        = flag.String("data", "PS", "dataset preset: PS, FS, or IM")
		scale       = flag.Float64("scale", 0.1, "dataset scale multiplier")
		hidden      = flag.Int("hidden", 32, "hidden dimension")
		layers      = flag.Int("layers", 2, "GNN layers")
		fanout      = flag.Int("fanout", 10, "neighbors sampled per layer")
		epochs      = flag.Int("epochs", 3, "training epochs")
		batch       = flag.Int("batch", 64, "per-GPU batch size")
		lr          = flag.Float64("lr", 0.01, "Adam learning rate")
		pinned      = flag.String("strategy", "", "pin a strategy (GDP/NFP/SNP/DNP) instead of planning")
		gradComp    = flag.String("grad-compress", "", "gradient wire codec: fp32 (default), fp16, or int8")
		measureWire = flag.Bool("measure-wire", false, "calibrate the planner against measured collective wire speeds")
		ckptDir     = flag.String("ckpt-dir", "", "rank 0 writes a rolling training snapshot here after every epoch")
		resume      = flag.Bool("resume", false, "resume from the snapshot in -ckpt-dir instead of starting fresh")
		dieAfter    = flag.Int("die-after", 0, "simulate a crash (exit 3) after this many total completed epochs")
	)
	flag.Parse()

	// The whole task must be a pure function of the shared flags: every
	// rank rebuilds the identical dataset, platform, and plan, and the
	// wire moves only per-batch payloads — never configuration.
	spec, err := dataset.ByAbbr(*data, *scale)
	fatal(err)
	spec.HomophilyDegree = 6
	ds := dataset.Build(spec, true)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, *world)
	fanouts := make([]int, *layers)
	for i := range fanouts {
		fanouts[i] = *fanout
	}
	task := core.Task{
		Graph:   ds.Graph,
		Feats:   ds.Feats,
		Labels:  ds.Labels,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, *hidden, spec.Classes, *layers)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(float32(*lr)) },
		Sampling:     sample.Config{Fanouts: fanouts},
		BatchSize:    *batch,
		Platform:     p,
		CacheBytes:   ds.CacheBytesFraction(0.08),
		Seed:         7,
		GradCompress: *gradComp,
	}

	tr, err := transport.NewTCP(transport.TCPOptions{
		Rank: *rank, World: *world, Coord: *coord, BindHost: *bind,
	})
	fatal(err)
	logf(*rank, "connected: world %d via %s", *world, *coord)

	if *measureWire {
		c := comm.NewWithTransport(device.NewGroup(p), tr)
		ws := transport.MeasureWire(c, *rank, 0, 0)
		task.ProfileOverride = ws.ApplyTo(comm.MeasureProfile(p))
		logf(*rank, "measured wire: alltoall %.2e B/s  allgather %.2e B/s  allreduce %.2e B/s",
			ws.AllToAllBps, ws.AllGatherBps, ws.AllReduceBps)
	}

	snapPath := ""
	if *ckptDir != "" {
		snapPath = filepath.Join(*ckptDir, checkpoint.DefaultName)
	}
	var apt *core.APT
	if *resume {
		if snapPath == "" {
			fatal(fmt.Errorf("-resume requires -ckpt-dir"))
		}
		// Every rank restores the identical snapshot, exactly as every
		// rank rebuilds the identical task: resumed state is
		// configuration, so it never crosses the wire.
		apt, err = core.ResumeFile(task, snapPath)
		fatal(err)
		logf(*rank, "resuming from %s after %d epoch(s)", snapPath, apt.EpochBase())
	} else {
		apt, err = core.New(task)
		fatal(err)
	}
	choice := strategy.SNP
	if *pinned != "" {
		choice, err = strategy.Parse(*pinned)
		fatal(err)
	} else {
		// Planning is deterministic in the task (and, under
		// -measure-wire, in the rank-agreed WireStats), so every rank
		// independently arrives at the same choice.
		choice, err = apt.Plan()
		fatal(err)
	}
	logf(*rank, "strategy: %v", choice)

	eng, err := apt.BuildEngineDistributed(choice, tr, *rank)
	fatal(err)
	fatal(apt.ApplyResume(eng))
	for ep := apt.EpochBase() + 1; ep <= *epochs; ep++ {
		//apt:allow simclock CLI progress reporting; the wall epoch time is the quantity a distributed run exists to improve
		start := time.Now()
		st := eng.RunEpoch()
		engine.RecordEpochMetrics(apt.Metrics(), st)
		//apt:allow simclock CLI progress reporting; the wall epoch time is the quantity a distributed run exists to improve
		wall := time.Since(start).Seconds()
		logf(*rank, "epoch %2d  wall %.3fs  sim %.4fs  loss %.4f",
			ep, wall, st.EpochTime(), st.MeanLoss)
		if snapPath != "" {
			// Snapshot building is collective (the sampler cursors are
			// exchanged across ranks), so every rank enters it; the
			// replicas are synchronized, so every rank holds the same
			// snapshot and rank 0 persists it.
			snap, err := apt.Snapshot()
			fatal(err)
			if *rank == 0 {
				fatal(snap.WriteFile(snapPath))
			}
		}
		if *dieAfter > 0 && ep >= *dieAfter {
			// Every rank gets the same -die-after, so the whole job dies
			// at the same epoch boundary — rank 0 has just written the
			// snapshot the relaunch will resume from. Close drains the
			// writer goroutines so the snapshot collective's payloads
			// reach the peers before this process disappears.
			logf(*rank, "simulated crash after epoch %d", ep)
			tr.Close()
			os.Exit(3)
		}
	}
	fatal(tr.Close())
	// The checksum covers this rank's trained replica bit-for-bit; the
	// collectives keep replicas synchronized, so all ranks must agree.
	logf(*rank, "params fnv64a %016x", paramChecksum(eng.Model(*rank)))
}

// paramChecksum hashes every parameter's exact f32 bit pattern in
// layer order.
func paramChecksum(m *nn.Model) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range m.Params() {
		for _, v := range p.W.Data {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

func logf(rank int, format string, args ...any) {
	fmt.Printf("[rank %d] %s\n", rank, fmt.Sprintf(format, args...))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptworker:", err)
		os.Exit(1)
	}
}
