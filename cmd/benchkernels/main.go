// Command benchkernels turns `go test -bench` output into
// BENCH_kernels.json, the committed kernel-performance record for the
// fused/cache-blocked kernel suite (driven by `make bench-kernels`).
//
// It reads benchmark lines from stdin, parses ns/op, MB/s, B/op and
// allocs/op, and writes a JSON document that pairs the fresh numbers
// with the recorded pre-fusion baseline (commit e95e513, the last
// commit before the tiled/fused kernels landed) so the speedup of the
// rewrite stays visible in-repo:
//
//	(go test -run XXX -bench . -benchmem ./internal/tensor/; \
//	 go test -run XXX -bench 'Epoch' -benchmem .) | benchkernels -out BENCH_kernels.json
//
// Two series are recorded: lines before a `# series: maxprocs` marker
// land in "results" (the GOMAXPROCS=1 series, comparable across
// machines), lines after it in "results_maxprocs" (GOMAXPROCS=NumCPU,
// exercising the parallel kernel branches; identical on a 1-CPU box).
//
// With -check, benchkernels compares fresh GOMAXPROCS=1 results from
// stdin against the record in -against and exits non-zero if any
// shared benchmark's ns/op regressed by more than -tolerance (driven
// by `make bench-check`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's parsed metrics.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baseline: measured at e95e513 on the same container (Intel Xeon @
// 2.10GHz, GOMAXPROCS=1), before the kernel rewrite. Only benchmarks
// that existed before the rewrite can carry a baseline; the per-kernel
// fused-vs-unfused pairs measure their own "before" live, since the
// unfused compositions are kept as benchmark-only code.
var baseline = map[string]result{
	"BenchmarkMatMul128":       {NsPerOp: 8271044, AllocsPerOp: 1},
	"BenchmarkSegmentMean":     {NsPerOp: 1187155, AllocsPerOp: 1},
	"BenchmarkEpochSequential": {NsPerOp: 104654739, BytesPerOp: 18877582, AllocsPerOp: 2620},
	"BenchmarkEpochPipelined":  {NsPerOp: 110960705},
}

const baselineCommit = "e95e513"

// report is the BENCH_kernels.json document.
type report struct {
	GeneratedBy    string            `json:"generated_by"`
	CPU            string            `json:"cpu,omitempty"`
	Go             string            `json:"go"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	BaselineCommit string            `json:"baseline_commit"`
	Baseline       map[string]result `json:"baseline"`
	Results        map[string]result `json:"results"`
	// ResultsMaxProcs is the GOMAXPROCS=NumCPU series — the same
	// benchmarks with the parallel kernel branches eligible to run. On
	// a single-CPU container it mirrors Results. MaxProcs records the
	// NumCPU the series ran at.
	ResultsMaxProcs map[string]result  `json:"results_maxprocs,omitempty"`
	MaxProcs        int                `json:"maxprocs,omitempty"`
	Speedup         map[string]float64 `json:"speedup_vs_baseline"`
}

// seriesMarker switches parsing from the GOMAXPROCS=1 series to the
// GOMAXPROCS=NumCPU series (emitted between the two runs by `make
// bench-kernels`).
const seriesMarker = "# series: maxprocs"

var procSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(fields []string) (string, result, bool) {
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	var r result
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return name, r, r.NsPerOp > 0
}

// readSeries parses benchmark output from r into a primary and (after
// the series marker) a maxprocs result map, also returning the
// reported CPU model if present.
func readSeries(r *os.File) (cpu string, primary, maxprocs map[string]result, err error) {
	primary = map[string]result{}
	maxprocs = map[string]result{}
	cur := primary
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == seriesMarker {
			cur = maxprocs
			continue
		}
		if c, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(c)
			continue
		}
		if name, res, ok := parseLine(strings.Fields(line)); ok {
			cur[name] = res
		}
	}
	return cpu, primary, maxprocs, sc.Err()
}

// check compares fresh results against the recorded report, printing a
// verdict per shared benchmark, and returns the number of regressions
// beyond tolerance (e.g. 0.10 = +10% ns/op).
func check(recordedPath string, fresh map[string]result, tolerance float64) (int, error) {
	buf, err := os.ReadFile(recordedPath)
	if err != nil {
		return 0, err
	}
	var rec report
	if err := json.Unmarshal(buf, &rec); err != nil {
		return 0, fmt.Errorf("%s: %w", recordedPath, err)
	}
	names := make([]string, 0, len(rec.Results))
	for n := range rec.Results {
		if _, ok := fresh[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no benchmarks shared between stdin and %s", recordedPath)
	}
	bad := 0
	for _, n := range names {
		was, now := rec.Results[n].NsPerOp, fresh[n].NsPerOp
		ratio := now/was - 1
		verdict := "ok"
		if ratio > tolerance {
			verdict = "REGRESSED"
			bad++
		}
		fmt.Printf("%-36s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n", n, was, now, 100*ratio, verdict)
	}
	return bad, nil
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output path")
	checkMode := flag.Bool("check", false, "compare stdin results against -against instead of writing a record")
	against := flag.String("against", "BENCH_kernels.json", "recorded report to compare against in -check mode")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -check mode")
	flag.Parse()

	cpu, primary, maxprocs, err := readSeries(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels: read:", err)
		os.Exit(1)
	}
	if len(primary) == 0 {
		fmt.Fprintln(os.Stderr, "benchkernels: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *checkMode {
		bad, err := check(*against, primary, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchkernels: check:", err)
			os.Exit(1)
		}
		if bad > 0 {
			fmt.Printf("FAIL: %d benchmark(s) regressed more than %.0f%% vs %s\n", bad, 100**tolerance, *against)
			os.Exit(1)
		}
		fmt.Printf("ok: no benchmark regressed more than %.0f%% vs %s\n", 100**tolerance, *against)
		return
	}

	rep := report{
		GeneratedBy:    "make bench-kernels",
		CPU:            cpu,
		Go:             runtime.Version(),
		GOMAXPROCS:     1, // the primary series is pinned to GOMAXPROCS=1
		BaselineCommit: baselineCommit,
		Baseline:       baseline,
		Results:        primary,
		Speedup:        map[string]float64{},
	}
	if len(maxprocs) > 0 {
		rep.ResultsMaxProcs = maxprocs
		rep.MaxProcs = runtime.NumCPU()
	}
	for name, base := range baseline {
		if r, ok := rep.Results[name]; ok && r.NsPerOp > 0 {
			rep.Speedup[name] = base.NsPerOp / r.NsPerOp
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(rep.Results))
	for n := range rep.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := rep.Results[n]
		line := fmt.Sprintf("%-36s %14.0f ns/op %6d allocs/op", n, r.NsPerOp, r.AllocsPerOp)
		if s, ok := rep.Speedup[n]; ok {
			line += fmt.Sprintf("   %.2fx vs %s", s, baselineCommit)
		}
		fmt.Println(line)
	}
	fmt.Println("wrote", *out)
}
