// Command benchkernels turns `go test -bench` output into
// BENCH_kernels.json, the committed kernel-performance record for the
// fused/cache-blocked kernel suite (driven by `make bench-kernels`).
//
// It reads benchmark lines from stdin, parses ns/op, MB/s, B/op and
// allocs/op, and writes a JSON document that pairs the fresh numbers
// with the recorded pre-fusion baseline (commit e95e513, the last
// commit before the tiled/fused kernels landed) so the speedup of the
// rewrite stays visible in-repo:
//
//	(go test -run XXX -bench . -benchmem ./internal/tensor/; \
//	 go test -run XXX -bench 'Epoch' -benchmem .) | benchkernels -out BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's parsed metrics.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// baseline: measured at e95e513 on the same container (Intel Xeon @
// 2.10GHz, GOMAXPROCS=1), before the kernel rewrite. Only benchmarks
// that existed before the rewrite can carry a baseline; the per-kernel
// fused-vs-unfused pairs measure their own "before" live, since the
// unfused compositions are kept as benchmark-only code.
var baseline = map[string]result{
	"BenchmarkMatMul128":       {NsPerOp: 8271044, AllocsPerOp: 1},
	"BenchmarkSegmentMean":     {NsPerOp: 1187155, AllocsPerOp: 1},
	"BenchmarkEpochSequential": {NsPerOp: 104654739, BytesPerOp: 18877582, AllocsPerOp: 2620},
	"BenchmarkEpochPipelined":  {NsPerOp: 110960705},
}

const baselineCommit = "e95e513"

// report is the BENCH_kernels.json document.
type report struct {
	GeneratedBy    string             `json:"generated_by"`
	CPU            string             `json:"cpu,omitempty"`
	Go             string             `json:"go"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	BaselineCommit string             `json:"baseline_commit"`
	Baseline       map[string]result  `json:"baseline"`
	Results        map[string]result  `json:"results"`
	Speedup        map[string]float64 `json:"speedup_vs_baseline"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(fields []string) (string, result, bool) {
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	var r result
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return name, r, r.NsPerOp > 0
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output path")
	flag.Parse()

	rep := report{
		GeneratedBy:    "make bench-kernels",
		Go:             runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		BaselineCommit: baselineCommit,
		Baseline:       baseline,
		Results:        map[string]result{},
		Speedup:        map[string]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if name, r, ok := parseLine(strings.Fields(line)); ok {
			rep.Results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels: read:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchkernels: no benchmark lines on stdin")
		os.Exit(1)
	}
	for name, base := range baseline {
		if r, ok := rep.Results[name]; ok && r.NsPerOp > 0 {
			rep.Speedup[name] = base.NsPerOp / r.NsPerOp
		}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(rep.Results))
	for n := range rep.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := rep.Results[n]
		line := fmt.Sprintf("%-36s %14.0f ns/op %6d allocs/op", n, r.NsPerOp, r.AllocsPerOp)
		if s, ok := rep.Speedup[n]; ok {
			line += fmt.Sprintf("   %.2fx vs %s", s, baselineCommit)
		}
		fmt.Println(line)
	}
	fmt.Println("wrote", *out)
}
