// Command aptserve is the online inference daemon: it loads (or
// trains) a GNN model over a synthetic dataset preset and serves
// predictions over HTTP/JSON with adaptive micro-batching, or
// benchmarks itself with the built-in load generator.
//
// Serve a checkpoint trained by aptrun (same dataset/model flags):
//
//	aptrun   -data FS -model sage -hidden 32 -epochs 5 -save /tmp/fs.ckpt
//	aptserve -data FS -model sage -hidden 32 -checkpoint /tmp/fs.ckpt -addr :8399
//
//	curl -s localhost:8399/predict -d '{"nodes":[1,2,3]}'
//	curl -s localhost:8399/stats     # JSON snapshot
//	curl -s localhost:8399/metrics   # text exposition format
//	curl -s localhost:8399/healthz
//
// A running daemon hot-swaps its model without dropping requests when
// the checkpoint file is rewritten (e.g. by a fresh aptrun) and either
// `curl -X POST localhost:8399/reload` or SIGHUP arrives. -checkpoint
// accepts both raw aptrun parameter files and full training snapshots
// written by the checkpoint facade.
//
// Or train in-process and benchmark the serving path:
//
//	aptserve -data FS -train-epochs 3 -loadgen -requests 2000 -concurrency 64
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8399", "HTTP listen address")
		data    = flag.String("data", "FS", "dataset preset: PS, FS, or IM")
		scale   = flag.Float64("scale", 0.1, "dataset scale multiplier")
		model   = flag.String("model", "sage", "model: sage or gat")
		hidden  = flag.Int("hidden", 32, "hidden dimension (per head for gat)")
		heads   = flag.Int("heads", 4, "attention heads (gat)")
		layers  = flag.Int("layers", 2, "GNN layers")
		fanout  = flag.Int("fanout", 10, "neighbors sampled per layer (0 = full neighborhoods)")
		ckpt    = flag.String("checkpoint", "", "load model parameters from this aptrun checkpoint")
		trainEp = flag.Int("train-epochs", 3, "in-process training epochs when no -checkpoint is given")
		devices = flag.Int("devices", 4, "simulated GPUs")
		workers = flag.Int("workers", 0, "inference workers (0 = one per device)")
		maxB    = flag.Int("max-batch", 64, "micro-batcher seed budget per mini-batch")
		maxD    = flag.Duration("max-delay", 2*time.Millisecond, "micro-batcher max queue delay")
		cacheFr = flag.Float64("cache-frac", 0.08, "per-device feature cache, as a fraction of total feature bytes")
		loadgen = flag.Bool("loadgen", false, "run the built-in load generator instead of listening")
		nReq    = flag.Int("requests", 1000, "load generator: total requests")
		conc    = flag.Int("concurrency", 64, "load generator: concurrent clients")
		perReq  = flag.Int("nodes-per-req", 1, "load generator: nodes per request")
	)
	flag.Parse()

	spec, err := dataset.ByAbbr(*data, *scale)
	fatal(err)
	spec.HomophilyDegree = 6
	ds := dataset.Build(spec, true)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, *devices)

	fanouts := make([]int, *layers)
	method := sample.NodeWise
	if *fanout <= 0 {
		method = sample.Full
	}
	for i := range fanouts {
		fanouts[i] = *fanout
	}
	smp := sample.Config{Fanouts: fanouts, Method: method}

	var newModel func() *nn.Model
	if *model == "gat" {
		newModel = func() *nn.Model {
			return nn.NewGAT(spec.FeatDim, *hidden, *heads, spec.Classes, *layers)
		}
	} else {
		newModel = func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, *hidden, spec.Classes, *layers)
		}
	}

	// Obtain a trained model: load aptrun's checkpoint, or train
	// in-process with APT's automatic strategy selection. Training also
	// yields the dry-run access frequencies, which configure the
	// serving caches with the paper's hotness rule instead of the
	// degree fallback.
	m := newModel()
	var freq []int64
	if *ckpt != "" {
		fatal(checkpoint.LoadModelInto(m, *ckpt))
		fmt.Printf("loaded checkpoint %s (%d params)\n", *ckpt, m.NumParamElements())
	} else {
		task := core.Task{
			Graph: ds.Graph, Feats: ds.Feats, Labels: ds.Labels,
			FeatDim: spec.FeatDim, Seeds: ds.TrainSeeds,
			NewModel:     newModel,
			NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
			Sampling:     smp, BatchSize: 64, Platform: p,
			CacheBytes: ds.CacheBytesFraction(*cacheFr), Seed: 7,
		}
		apt, err := core.New(task)
		fatal(err)
		choice, err := apt.Plan()
		fatal(err)
		fmt.Printf("training %d epochs in-process (APT selected %v)...\n", *trainEp, choice)
		res, err := apt.TrainWith(choice, *trainEp)
		fatal(err)
		m = res.Model
		freq = apt.DryRunStats().Freq
		fmt.Printf("trained: mean loss %.4f (last epoch)\n", res.Epochs[len(res.Epochs)-1].MeanLoss)
	}

	cfg := serve.Config{
		Graph: ds.Graph, Feats: ds.Feats, Model: m,
		Sampling: smp, Platform: p, Workers: *workers,
		MaxBatch: *maxB, MaxDelay: *maxD,
		CacheBytes: ds.CacheBytesFraction(*cacheFr),
		Seed:       11,
		NewModel:   newModel,
		ReloadPath: *ckpt,
	}
	if freq != nil {
		cfg.Freq = freq // enables the hotness cache policy
	}
	srv, err := serve.New(cfg)
	fatal(err)

	if *loadgen {
		runLoadGen(srv, ds, *nReq, *conc, *perReq)
		fatal(srv.Close())
		return
	}
	serveHTTP(srv, *addr)
}

// runLoadGen fires nReq requests from conc concurrent clients at the
// in-process server and reports latency percentiles, throughput,
// batch sizes, cache hit rate, and label accuracy against the dataset.
//
//apt:allow simclock the load generator measures real request latency and throughput
func runLoadGen(srv *serve.Server, ds *dataset.Dataset, nReq, conc, perReq int) {
	fmt.Printf("load generator: %d requests, %d clients, %d node(s)/request\n", nReq, conc, perReq)
	var next, correct, answered atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := graph.NewRNG(uint64(0xbeef + c*131))
			nodes := make([]graph.NodeID, perReq)
			for next.Add(1) <= int64(nReq) {
				for i := range nodes {
					nodes[i] = graph.NodeID(rng.Intn(ds.Graph.NumNodes()))
				}
				res, err := srv.Predict(nodes)
				if err != nil {
					fmt.Fprintln(os.Stderr, "aptserve: predict:", err)
					return
				}
				for _, r := range res {
					answered.Add(1)
					if int32(r.Label) == ds.Labels[r.Node] {
						correct.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	st := srv.Stats()
	fmt.Printf("\ncompleted %d requests in %.3fs (%.0f req/s wall)\n",
		st.Requests, wall.Seconds(), float64(st.Requests)/wall.Seconds())
	fmt.Printf("latency  p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms  mean %.3fms\n",
		st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs, st.MeanMs)
	fmt.Printf("batching %d batches, %.2f seeds/batch mean, %d max",
		st.Batches, st.MeanBatchSeeds, st.MaxBatchSeeds)
	fmt.Printf("  (hist:")
	for _, b := range st.BatchHist {
		fmt.Printf(" %d×%d", b.Seeds, b.Count)
	}
	fmt.Printf(")\n")
	fmt.Printf("features %.1f%% GPU-cache hits, reads %v, %.3fs simulated device time\n",
		100*st.CacheHitRate, st.FeatureReads, st.SimSeconds)
	if n := answered.Load(); n > 0 {
		fmt.Printf("accuracy %.3f over %d answered nodes\n", float64(correct.Load())/float64(n), n)
	}
}

// predictRequest is the /predict request body.
type predictRequest struct {
	Nodes []graph.NodeID `json:"nodes"`
}

// predictResponse is the /predict response body.
type predictResponse struct {
	Results   []serve.Result `json:"results"`
	LatencyMs float64        `json:"latency_ms"`
}

// serveHTTP runs the HTTP daemon until SIGINT/SIGTERM, then drains.
//
//apt:allow simclock the per-request latency_ms field is a wall-clock serving metric
func serveHTTP(srv *serve.Server, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		var req predictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		res, err := srv.Predict(req.Nodes)
		switch err.(type) {
		case nil:
		case *serve.UnknownNodeError:
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		default:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(predictResponse{
			Results:   res,
			LatencyMs: time.Since(start).Seconds() * 1e3,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		srv.Metrics().WriteExposition(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := srv.ReloadCheckpoint(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"model_version\":%d}\n", srv.ModelVersion())
	})

	hs := &http.Server{Addr: addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
		for s := range sig {
			if s == syscall.SIGHUP {
				// Hot-swap from the checkpoint file, keep serving.
				if err := srv.ReloadCheckpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "aptserve: reload:", err)
				} else {
					fmt.Printf("reloaded checkpoint (model version %d)\n", srv.ModelVersion())
				}
				continue
			}
			break
		}
		fmt.Println("\nshutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}()
	fmt.Printf("aptserve listening on %s (%d workers)\n", addr, srv.NumWorkers())
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptserve:", err)
		os.Exit(1)
	}
}
