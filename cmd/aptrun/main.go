// Command aptrun trains a GNN with APT's automatic strategy selection
// on a synthetic dataset preset, reporting the planner's estimates,
// the chosen strategy, and per-epoch progress.
//
// Usage:
//
//	aptrun -data FS -model sage -hidden 32 -epochs 5
//	aptrun -data PS -model gat -strategy DNP   # pin a strategy
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

func main() {
	var (
		data     = flag.String("data", "FS", "dataset preset: PS, FS, or IM")
		scale    = flag.Float64("scale", 0.1, "dataset scale multiplier")
		model    = flag.String("model", "sage", "model: sage or gat")
		hidden   = flag.Int("hidden", 32, "hidden dimension (per head for gat)")
		heads    = flag.Int("heads", 4, "attention heads (gat)")
		layers   = flag.Int("layers", 2, "GNN layers")
		fanout   = flag.Int("fanout", 10, "neighbors sampled per layer")
		epochs   = flag.Int("epochs", 5, "training epochs")
		batch    = flag.Int("batch", 64, "per-GPU batch size")
		devices  = flag.Int("devices", 4, "GPUs")
		lr       = flag.Float64("lr", 0.01, "Adam learning rate")
		pinned   = flag.String("strategy", "", "pin a strategy (GDP/NFP/SNP/DNP/Hybrid) instead of planning")
		simulate = flag.Bool("simulate", false, "accounting mode: no real training, timing only")
		explain  = flag.Bool("explain", false, "print the adapted execution plan before training")
		timeline = flag.Bool("timeline", false, "print per-step stage times for the last epoch")
		save     = flag.String("save", "", "checkpoint the trained model to this file")
		tracePth = flag.String("trace", "", "write a Chrome trace of the run's spans to this file (chrome://tracing)")
		metrics  = flag.Bool("metrics", false, "dump the metrics registry (text exposition format) on exit")
	)
	flag.Parse()

	spec, err := dataset.ByAbbr(*data, *scale)
	fatal(err)
	spec.HomophilyDegree = 6
	ds := dataset.Build(spec, !*simulate)

	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, *devices)
	fanouts := make([]int, *layers)
	for i := range fanouts {
		fanouts[i] = *fanout
	}
	var newModel func() *nn.Model
	if *model == "gat" {
		newModel = func() *nn.Model {
			return nn.NewGAT(spec.FeatDim, *hidden, *heads, spec.Classes, *layers)
		}
	} else {
		newModel = func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, *hidden, spec.Classes, *layers)
		}
	}
	task := core.Task{
		Graph:          ds.Graph,
		Feats:          ds.Feats,
		Labels:         ds.Labels,
		FeatDim:        spec.FeatDim,
		Seeds:          ds.TrainSeeds,
		NewModel:       newModel,
		NewOptimizer:   func() nn.Optimizer { return nn.NewAdam(float32(*lr)) },
		Sampling:       sample.Config{Fanouts: fanouts},
		BatchSize:      *batch,
		Platform:       p,
		CacheBytes:     ds.CacheBytesFraction(0.08),
		RecordTimeline: *timeline,
		Seed:           7,
	}
	var opts []obs.Option
	if *tracePth != "" {
		opts = append(opts, obs.WithTracePath(*tracePth))
	}
	apt, err := core.New(task, opts...)
	fatal(err)

	choice := strategy.GDP
	if *pinned != "" {
		choice, err = strategy.Parse(*pinned)
		fatal(err)
		fmt.Printf("strategy pinned to %v (planning skipped)\n", choice)
	} else {
		choice, err = apt.Plan()
		fatal(err)
		if *explain {
			fmt.Println(apt.Report())
		} else {
			fmt.Printf("planner estimates (dry-run %.2fs wall):\n%s", apt.PlanWallSeconds,
				core.FormatEstimates(apt.Estimates))
			fmt.Printf("APT selected: %v\n\n", choice)
		}
	}
	if *explain && *pinned != "" {
		fmt.Println(engine.DescribePlan(choice, newModel()))
	}
	eng, err := apt.BuildEngine(choice)
	fatal(err)
	var lastStats engine.EpochStats
	for ep := 1; ep <= *epochs; ep++ {
		st := eng.RunEpoch()
		engine.RecordEpochMetrics(apt.Metrics(), st)
		lastStats = st
		line := fmt.Sprintf("epoch %2d  sim %.4fs  %s", ep, st.EpochTime(), st.String())
		if !*simulate {
			acc := engine.Evaluate(ds.Graph, eng.Model(0), ds.Feats, ds.Labels,
				ds.TestSeeds, task.Sampling, 256, 1)
			line += fmt.Sprintf("  loss %.4f  test-acc %.3f", st.MeanLoss, acc)
		}
		fmt.Println(line)
	}
	if *timeline && len(lastStats.Timeline) > 0 {
		fmt.Println("per-step stage times (last epoch):")
		fmt.Print(engine.FormatTimeline(lastStats.Timeline))
	}
	if *save != "" {
		// A full training snapshot (params + optimizer moments + RNG
		// cursors), so the run can be resumed or served; aptserve's
		// -checkpoint flag accepts it directly.
		fatal(apt.CheckpointFile(*save))
		fmt.Printf("training snapshot written to %s\n", *save)
	}
	if *tracePth != "" {
		fatal(obs.WriteChromeTraceFile(*tracePth, apt.Spans()))
		fmt.Printf("chrome trace written to %s (load in chrome://tracing)\n", *tracePth)
		fmt.Print(trace.RenderSpanBars("per-track span totals:", apt.Spans(), nil))
	}
	if *metrics {
		fmt.Print(apt.Metrics().Exposition())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aptrun:", err)
		os.Exit(1)
	}
}
