// Package repro is APT-Go, a from-scratch Go reproduction of
// "Adaptive Parallel Training for Graph Neural Networks" (PPoPP 2025):
// a system that automatically selects among four GNN parallelization
// strategies (GDP, NFP, SNP, DNP) using dry-run-driven cost models and
// executes the choice on a unified multi-device engine.
//
// The library lives under internal/: see internal/core for the APT
// system, internal/engine for the unified execution engine,
// internal/strategy for the strategies, and internal/experiments for
// the paper's evaluation harness. Entry points are the commands under
// cmd/ and the runnable examples under examples/.
package repro
