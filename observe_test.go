package repro_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestStrategyRoundTrip is the facade's name round-trip table:
// ParseStrategy is the inverse of Strategy.String for every strategy,
// in canonical and lower case, and rejects unknown names.
func TestStrategyRoundTrip(t *testing.T) {
	all := []repro.Strategy{repro.GDP, repro.NFP, repro.SNP, repro.DNP, repro.Hybrid}
	for _, k := range all {
		name := k.String()
		for _, s := range []string{name, strings.ToLower(name)} {
			got, err := repro.ParseStrategy(s)
			if err != nil {
				t.Errorf("ParseStrategy(%q): %v", s, err)
				continue
			}
			if got != k {
				t.Errorf("ParseStrategy(%q) = %v, want %v", s, got, k)
			}
		}
	}
	for _, k := range repro.CoreStrategies {
		if got, err := repro.ParseStrategy(k.String()); err != nil || got != k {
			t.Errorf("core strategy %v does not round-trip (%v, %v)", k, got, err)
		}
	}
	for _, bad := range []string{"", "gdp ", "PDQ", "hybri"} {
		if _, err := repro.ParseStrategy(bad); err == nil {
			t.Errorf("ParseStrategy(%q) accepted an unknown name", bad)
		}
	}
}

// spyObserver records what the flush delivered.
type spyObserver struct {
	spans   int
	metrics string
}

func (o *spyObserver) ObserveSpans(tracks []*repro.SpanTrack) {
	for _, tr := range tracks {
		o.spans += tr.Len()
	}
}

func (o *spyObserver) ObserveMetrics(r *repro.MetricsRegistry) {
	o.metrics = r.Exposition()
}

// TestFacadeObservability drives training through the redesigned
// facade with both observability options attached: the Chrome trace
// file appears on disk with span events, the observer sees spans and
// metrics, and the registry carries the epoch series.
func TestFacadeObservability(t *testing.T) {
	spec := repro.DatasetPresets(0.03)[0]
	spec.Classes = 4
	ds := repro.BuildDataset(spec, false) // accounting mode: no features

	task := repro.Task{
		Graph:   ds.Graph,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *repro.Model {
			return repro.NewGraphSAGE(spec.FeatDim, 8, spec.Classes, 2)
		},
		Sampling:  repro.SamplingConfig{Fanouts: []int{4, 4}},
		BatchSize: 64,
		Platform:  repro.WithDevices(repro.SingleMachine8GPU(), 1, 2),
		Pipeline:  true,
		Seed:      5,
	}
	path := filepath.Join(t.TempDir(), "train.json")
	spy := &spyObserver{}
	apt, err := repro.NewAPT(task, repro.WithTracePath(path), repro.WithObserver(spy))
	if err != nil {
		t.Fatal(err)
	}
	res, err := apt.Train(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("trained %d epochs, want 2", len(res.Epochs))
	}
	if spy.spans == 0 {
		t.Error("observer saw no spans")
	}
	if !strings.Contains(spy.metrics, "apt_engine_epochs_total 2") {
		t.Error("observer metrics missing the epoch counter")
	}
	if exp := apt.Metrics().Exposition(); !strings.Contains(exp, "apt_engine_pipelined_seconds") {
		t.Error("registry missing the pipelined gauge")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace file has no span events")
	}
}

// TestFacadeTrainContext checks cancellation through the facade: a
// cancelled context ends training early with ctx.Err().
func TestFacadeTrainContext(t *testing.T) {
	spec := repro.DatasetPresets(0.03)[0]
	spec.Classes = 4
	ds := repro.BuildDataset(spec, false)
	task := repro.Task{
		Graph:   ds.Graph,
		FeatDim: spec.FeatDim,
		Seeds:   ds.TrainSeeds,
		NewModel: func() *repro.Model {
			return repro.NewGraphSAGE(spec.FeatDim, 8, spec.Classes, 2)
		},
		Sampling:  repro.SamplingConfig{Fanouts: []int{4, 4}},
		BatchSize: 64,
		Platform:  repro.WithDevices(repro.SingleMachine8GPU(), 1, 2),
		Seed:      5,
	}
	apt, err := repro.NewAPT(task)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := apt.TrainContext(ctx, 4)
	if err != context.Canceled {
		t.Fatalf("TrainContext err = %v, want context.Canceled", err)
	}
	if len(res.Epochs) != 0 {
		t.Errorf("cancelled run still reported %d epochs", len(res.Epochs))
	}
}
