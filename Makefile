GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: vet + build everything, then run the
# concurrency-heavy packages (pipelined engine, pooled kernels) under
# the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/engine/... ./internal/tensor/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .
