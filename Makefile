GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: vet + build everything (including the
# serving daemon), then run the concurrency-heavy packages (pipelined
# engine, pooled kernels, inference server, span/metrics collection)
# under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) build ./cmd/aptserve
	$(GO) test -race ./internal/engine/... ./internal/tensor/... ./internal/serve/... ./internal/obs/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .
