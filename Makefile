GO ?= go

.PHONY: build test lint verify bench bench-kernels bench-check bench-transport

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus aptlint -audit, the repo's own analyzer suite
# (determinism, hot-path allocation, tensor-pool invariants, and the
# distributed-protocol analyzers: lockstep collectives, goroutine
# ownership, wire-contract goldens — see DESIGN.md decisions 14 and
# 19). -audit also fails on stale //apt:allow directives, from the
# same single go/types load as the findings.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aptlint -audit

# Fused kernels that must stay allocation-free in steady state (the
# pipelined engine depends on it); verify runs them under -benchmem and
# fails on any non-zero allocs/op. The Quant variants read through the
# int8 warm tier — their pooled dequant scratch must not show up as
# steady-state allocation either.
ALLOC_FREE_KERNELS = 'MatMulDense|MatMulBiasReLU$$|GatherMatMul$$|GatherMatMulQuant$$|TMatMulAcc$$|TMatMulAccQuant$$|SegmentAggFused'

# verify is the pre-merge gate: lint (vet + aptlint -audit) + build
# everything (including the serving daemon), run the concurrency-heavy
# packages (pipelined engine, pooled kernels, inference server —
# including the blue/green reload path, span/metrics collection, comm
# ledger, device clocks, the TCP transport's loopback collective tests,
# the checkpoint codec, the parallel full-graph inference path, and the
# int8 cache tier) under the race detector, then hold the fused
# kernels to zero steady-state allocations.
verify: lint
	$(GO) build ./...
	$(GO) build ./cmd/aptserve
	$(GO) test -race ./internal/engine/... ./internal/tensor/... ./internal/serve/... ./internal/obs/... ./internal/comm/... ./internal/device/... ./internal/transport/... ./internal/checkpoint/... ./internal/fullgraph/... ./internal/cache/...
	$(GO) test -run XXX -bench $(ALLOC_FREE_KERNELS) -benchmem -benchtime 50x ./internal/tensor/ \
		| awk '/^Benchmark/ { if ($$(NF-1)+0 != 0) { print "FAIL (allocs/op != 0):", $$0; bad=1 } } END { exit bad }'

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# bench-kernels regenerates BENCH_kernels.json: the tensor-package
# kernel micro-benchmarks plus the end-to-end epoch/substrate
# benchmarks whose pre-fusion baseline is recorded in cmd/benchkernels.
# Two series are recorded: a GOMAXPROCS=1 run (comparable across
# machines, the series bench-check gates on) and a GOMAXPROCS=NumCPU
# run that lets the parallel kernel branches fire on multi-core hosts.
EPOCH_BENCHES = 'MatMul128|SegmentMean$$|EpochSequential|EpochPipelined'

bench-kernels:
	( GOMAXPROCS=1 $(GO) test -run XXX -bench . -benchmem -benchtime 100x ./internal/tensor/ ; \
	  GOMAXPROCS=1 $(GO) test -run XXX -bench $(EPOCH_BENCHES) -benchmem -benchtime 20x . ; \
	  echo '# series: maxprocs' ; \
	  $(GO) test -run XXX -bench . -benchmem -benchtime 100x ./internal/tensor/ ; \
	  $(GO) test -run XXX -bench $(EPOCH_BENCHES) -benchmem -benchtime 20x . ) \
		| $(GO) run ./cmd/benchkernels -out BENCH_kernels.json

# bench-check re-runs the GOMAXPROCS=1 series and fails if any shared
# benchmark's ns/op regressed more than 10% against the committed
# BENCH_kernels.json record, then re-runs the raw allreduce series and
# fails on a >10% regression against BENCH_transport.json (or a
# ring-vs-naive win at world 4 over TCP below 40%).
bench-check:
	( GOMAXPROCS=1 $(GO) test -run XXX -bench . -benchmem -benchtime 100x ./internal/tensor/ ; \
	  GOMAXPROCS=1 $(GO) test -run XXX -bench $(EPOCH_BENCHES) -benchmem -benchtime 20x . ) \
		| $(GO) run ./cmd/benchkernels -check -against BENCH_kernels.json
	$(GO) run ./cmd/aptbench -exp transport -check

# bench-transport regenerates BENCH_transport.json: wall-clock epoch
# time of real-mode training per strategy under the in-process channel
# transport vs the TCP backend over loopback (2 rank processes), plus
# the raw allreduce series — naive full-mesh vs chunked ring, per wire
# codec (fp32/fp16/int8), at worlds 2 and 4 over both backends.
# Training is bit-identical across the two, so the tcp/channel ratio
# isolates pure wire overhead (serialization + sockets).
bench-transport:
	$(GO) run ./cmd/aptbench -exp transport -scale 0.1 -epochs 2
