GO ?= go

.PHONY: build test lint verify bench bench-kernels

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs go vet plus aptlint, the repo's own analyzer suite
# (determinism, hot-path allocation, and tensor-pool invariants — see
# DESIGN.md decision 14). Exits non-zero on any unsuppressed finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/aptlint

# Fused kernels that must stay allocation-free in steady state (the
# pipelined engine depends on it); verify runs them under -benchmem and
# fails on any non-zero allocs/op.
ALLOC_FREE_KERNELS = 'MatMulDense|MatMulBiasReLU$$|GatherMatMul$$|TMatMulAcc$$|SegmentAggFused'

# verify is the pre-merge gate: lint (vet + aptlint) + build everything
# (including the serving daemon), run the concurrency-heavy packages
# (pipelined engine, pooled kernels, inference server, span/metrics
# collection, comm ledger, device clocks) under the race detector, then
# hold the fused kernels to zero steady-state allocations.
verify: lint
	$(GO) build ./...
	$(GO) build ./cmd/aptserve
	$(GO) test -race ./internal/engine/... ./internal/tensor/... ./internal/serve/... ./internal/obs/... ./internal/comm/... ./internal/device/...
	$(GO) test -run XXX -bench $(ALLOC_FREE_KERNELS) -benchmem -benchtime 50x ./internal/tensor/ \
		| awk '/^Benchmark/ { if ($$(NF-1)+0 != 0) { print "FAIL (allocs/op != 0):", $$0; bad=1 } } END { exit bad }'

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

# bench-kernels regenerates BENCH_kernels.json: the tensor-package
# kernel micro-benchmarks plus the end-to-end epoch/substrate
# benchmarks whose pre-fusion baseline is recorded in cmd/benchkernels.
bench-kernels:
	( $(GO) test -run XXX -bench . -benchmem -benchtime 100x ./internal/tensor/ ; \
	  $(GO) test -run XXX -bench 'MatMul128|SegmentMean$$|EpochSequential|EpochPipelined' -benchmem -benchtime 20x . ) \
		| $(GO) run ./cmd/benchkernels -out BENCH_kernels.json
