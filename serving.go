package repro

// Serving surface of the facade: online inference over a trained
// model with adaptive micro-batching (package internal/serve), plus
// blue/green model hot-swap — Server.Reload installs a new model
// without dropping a single in-flight request, and
// Server.ReloadCheckpoint does the same from the checkpoint file
// named by WithReload.

import "repro/internal/serve"

type (
	// Server is the online inference server; issue requests with
	// Server.Predict / Server.PredictContext and stop with
	// Server.Close.
	Server = serve.Server
	// ServeConfig configures Serve.
	ServeConfig = serve.Config
	// PredictResult is one node's prediction.
	PredictResult = serve.Result
	// ServeStats is a snapshot of a Server's metrics registry
	// (latency percentiles, throughput, batch sizes, cache hit rate).
	ServeStats = serve.Snapshot
)

// ErrServerClosed is returned by Server.Predict after Server.Close.
var ErrServerClosed = serve.ErrServerClosed

// Serve starts an online inference server over a trained model.
// Options attach observers (WithObserver, WithTracePath) that flush
// when the server closes and configure hot-swap (WithReload).
func Serve(cfg ServeConfig, opts ...Option) (*Server, error) {
	for _, o := range opts {
		if o.serve != nil {
			o.serve(&cfg)
		}
	}
	return serve.New(cfg, obsOf(opts)...)
}
