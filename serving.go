package repro

// Serving surface of the facade: online inference over a trained
// model with adaptive micro-batching (package internal/serve).

import "repro/internal/serve"

type (
	// Server is the online inference server; issue requests with
	// Server.Predict / Server.PredictContext and stop with
	// Server.Close.
	Server = serve.Server
	// ServeConfig configures Serve.
	ServeConfig = serve.Config
	// PredictResult is one node's prediction.
	PredictResult = serve.Result
	// ServeStats is a snapshot of a Server's metrics registry
	// (latency percentiles, throughput, batch sizes, cache hit rate).
	ServeStats = serve.Snapshot
)

// ErrServerClosed is returned by Server.Predict after Server.Close.
var ErrServerClosed = serve.ErrServerClosed

// Serve starts an online inference server over a trained model.
// Observability options (WithObserver, WithTracePath) attach
// observers that flush when the server closes.
var Serve = serve.New
