package repro

// Data surface of the facade: graphs, features, synthetic datasets,
// simulated platforms, partitioning, sampling, and caching.

import (
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Data types.
type (
	// Graph is a CSR graph; NodeID indexes its nodes.
	Graph  = graph.Graph
	NodeID = graph.NodeID
	// Matrix is a dense float32 matrix (features, embeddings).
	Matrix = tensor.Matrix
	// Platform describes a simulated training cluster.
	Platform = hardware.Platform
	// Partitioning assigns nodes to devices.
	Partitioning = partition.Partitioning
	// SamplingConfig selects the graph-sampling algorithm.
	SamplingConfig = sample.Config
	// Dataset is a materialized synthetic dataset preset.
	Dataset = dataset.Dataset
	// DatasetSpec describes a synthetic dataset.
	DatasetSpec = dataset.Spec
	// PartitionConfig tunes the multilevel partitioner.
	PartitionConfig = partition.MultilevelConfig
	// CachePolicy selects a feature-cache rule.
	CachePolicy = cache.Policy
)

// Constructors and entry points of the data surface.
var (
	// SingleMachine8GPU and FourMachines4GPU are the paper's platforms.
	SingleMachine8GPU = hardware.SingleMachine8GPU
	FourMachines4GPU  = hardware.FourMachines4GPU
	// WithDevices adjusts a platform's topology.
	WithDevices = hardware.WithDevices
	// MultilevelPartition is the METIS-style partitioner.
	MultilevelPartition = partition.Multilevel
	// BuildDataset materializes a synthetic dataset preset.
	BuildDataset = dataset.Build
	// DatasetPresets lists the paper's three evaluation datasets.
	DatasetPresets = dataset.Presets
	// ReadEdgeList parses a SNAP-style text edge list.
	ReadEdgeList = graph.ReadEdgeList
)
