package repro

// Functional options of the facade. One Option type configures every
// entry point — NewAPT, Resume, and Serve each apply the parts that
// concern them and ignore the rest, so a single option list can
// describe a whole deployment:
//
//	opts := []repro.Option{
//		repro.WithTracePath("run.json"),
//		repro.WithCheckpointDir("/var/lib/apt"),
//	}
//	apt, _ := repro.NewAPT(task, opts...)
//
// Observability options attach observers that flush when the run
// ends; checkpoint options make training write rolling snapshots;
// serving options configure the model hot-swap path.

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Option configures a facade entry point. The zero Option is a no-op.
type Option struct {
	apt   func(*core.APT)
	obs   []obs.Option
	serve func(*serve.Config)
}

// WithObserver delivers the run's spans and metrics to an Observer at
// flush time (training finishes, server closes).
func WithObserver(o Observer) Option {
	return Option{obs: []obs.Option{obs.WithObserver(o)}}
}

// WithTracePath writes a Chrome trace-event JSON file at flush time;
// load it in chrome://tracing or Perfetto.
func WithTracePath(path string) Option {
	return Option{obs: []obs.Option{obs.WithTracePath(path)}}
}

// WithCheckpointDir makes Train write a rolling training snapshot
// (dir/snapshot.aptc, atomically replaced) at epoch boundaries, for
// crash recovery via Resume. Applies to NewAPT and Resume.
func WithCheckpointDir(dir string) Option {
	return Option{apt: func(a *core.APT) { a.CheckpointDir = dir }}
}

// WithCheckpointEvery sets the snapshot cadence in epochs (default 1:
// every epoch boundary). Applies to NewAPT and Resume.
func WithCheckpointEvery(epochs int) Option {
	return Option{apt: func(a *core.APT) { a.CheckpointEvery = epochs }}
}

// WithCheckpointRetain keeps the newest k snapshots instead of one
// rolling file: each boundary writes an epoch-stamped snapshot
// (snapshot-ep%08d.aptc) and prunes the rest. Find the resume point
// with LatestSnapshot. Applies to NewAPT and Resume.
func WithCheckpointRetain(k int) Option {
	return Option{apt: func(a *core.APT) { a.CheckpointRetain = k }}
}

// WithReload names the checkpoint file Server.ReloadCheckpoint
// hot-swaps the model from — either a raw parameter file or a full
// training snapshot. Applies to Serve; the config's NewModel factory
// must also be set.
func WithReload(path string) Option {
	return Option{serve: func(c *serve.Config) { c.ReloadPath = path }}
}

// obsOf collects the observability parts of an option list.
func obsOf(opts []Option) []obs.Option {
	var out []obs.Option
	for _, o := range opts {
		out = append(out, o.obs...)
	}
	return out
}

// applyAPT applies the training-side parts of an option list.
func applyAPT(a *core.APT, opts []Option) {
	for _, o := range opts {
		if o.apt != nil {
			o.apt(a)
		}
	}
}
